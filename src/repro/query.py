"""The unified query request/result surface.

Every planner answers every query type through one entry point —
:meth:`repro.planner.RoutePlanner.plan` — driven by the frozen
:class:`QueryRequest` dataclass below.  Before this existed the four
query types had four differently-shaped method signatures, and every
consumer (the HTTP service, the federation stitcher, the live engine,
the benchmark harness, the CLI) carried its own ``if kind == ...``
switch-case.  Those switch-cases now live in exactly one place:
``RoutePlanner.plan``.

``QueryRequest`` is deliberately a plain frozen dataclass (hashable,
usable as a cache key component) rather than a class hierarchy: the
four query types share almost all fields, and serialization to/from
the HTTP layer stays a trivial field copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.journey import Journey

#: The four point-to-point query types of the paper (Definitions 2-4
#: plus the profile extension).
QUERY_TYPES = ("eap", "ldp", "sdp", "profile")

#: The three batched query kinds accepted by ``/v1/batch``.
BATCH_KINDS = ("one_to_many", "matrix", "isochrone")


@dataclass(frozen=True)
class QueryRequest:
    """One point-to-point query, any type.

    Field use per ``query_type``:

    * ``"eap"`` — ``t`` is the earliest departure (``t_end`` ignored);
    * ``"ldp"`` — ``t_end`` is the latest arrival (``t`` ignored);
    * ``"sdp"`` / ``"profile"`` — ``[t, t_end]`` is the query window;
    * ``max_results`` — profile only: truncate the returned frontier.
    """

    query_type: str
    source: int
    destination: int
    t: Optional[int] = None
    t_end: Optional[int] = None
    max_results: Optional[int] = None

    def validated(self) -> "QueryRequest":
        """Raise :class:`QueryError` unless the request is well-formed
        for its query type; returns ``self`` so calls chain."""
        if self.query_type not in QUERY_TYPES:
            raise QueryError(
                f"unknown query type: {self.query_type!r}",
                hint=f"one of {', '.join(QUERY_TYPES)}",
            )
        if self.query_type in ("eap", "sdp", "profile") and self.t is None:
            raise QueryError(
                f"{self.query_type} query requires t (start time)"
            )
        if self.query_type in ("ldp", "sdp", "profile") and self.t_end is None:
            raise QueryError(
                f"{self.query_type} query requires t_end (end time)"
            )
        if self.max_results is not None and self.max_results < 1:
            raise QueryError(
                f"max_results must be positive: {self.max_results}"
            )
        return self


@dataclass(frozen=True)
class QueryResult:
    """The answer to one :class:`QueryRequest`.

    Exactly one payload field is meaningful per query type: ``journey``
    for eap/ldp/sdp (``None`` when infeasible), ``pairs`` for profile
    (the non-dominated ``(dep, arr)`` frontier, ascending by
    departure, possibly truncated to ``max_results``).
    """

    request: QueryRequest
    journey: Optional[Journey] = None
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def feasible(self) -> bool:
        if self.request.query_type == "profile":
            return bool(self.pairs)
        return self.journey is not None


@dataclass(frozen=True)
class BatchQuery:
    """One item of a batched request (``/v1/batch``).

    Field use per ``kind``:

    * ``"one_to_many"`` — ``sources`` has one entry; arrivals to every
      ``targets`` entry;
    * ``"matrix"`` — full ``sources`` × ``targets`` arrival matrix;
    * ``"isochrone"`` — ``sources`` has one entry; stations reachable
      within ``budget`` seconds of departing at ``t`` (targets
      ignored).
    """

    kind: str
    sources: Tuple[int, ...]
    t: int
    targets: Tuple[int, ...] = ()
    budget: Optional[int] = None

    def validated(self) -> "BatchQuery":
        if self.kind not in BATCH_KINDS:
            raise QueryError(
                f"unknown batch kind: {self.kind!r}",
                hint=f"one of {', '.join(BATCH_KINDS)}",
            )
        if not self.sources:
            raise QueryError("batch query requires at least one source")
        if self.kind in ("one_to_many", "isochrone") and len(self.sources) != 1:
            raise QueryError(
                f"{self.kind} takes exactly one source, "
                f"got {len(self.sources)}"
            )
        if self.kind in ("one_to_many", "matrix") and not self.targets:
            raise QueryError(f"{self.kind} requires targets")
        if self.kind == "isochrone":
            if self.budget is None:
                raise QueryError("isochrone requires a time budget")
            if self.budget < 0:
                raise QueryError(f"negative time budget: {self.budget}")
        return self


def journeys_request(
    query_type: str,
    source: int,
    destination: int,
    t: Optional[int] = None,
    t_end: Optional[int] = None,
    max_results: Optional[int] = None,
) -> QueryRequest:
    """Convenience constructor that validates eagerly."""
    return QueryRequest(
        query_type=query_type,
        source=source,
        destination=destination,
        t=t,
        t_end=t_end,
        max_results=max_results,
    ).validated()
