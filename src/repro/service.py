"""A minimal HTTP JSON API over a planner (stdlib only).

The deployment story the paper implies — build the index offline,
serve microsecond queries online — in ~150 lines of standard library:

    from repro.datasets import load_dataset
    from repro.core import TTLPlanner
    from repro.service import PlannerService

    service = PlannerService(TTLPlanner(load_dataset("Berlin")))
    service.start(port=8080)          # non-blocking (daemon thread)

Endpoints (all GET, JSON responses):

* ``/stations``                         — id/name listing
* ``/eap?from=U&to=V&t=SECONDS``        — earliest arrival
* ``/ldp?from=U&to=V&t=SECONDS``        — latest departure
* ``/sdp?from=U&to=V&t=A&t_end=B``      — shortest duration
* ``/profile?from=U&to=V&t=A&t_end=B``  — non-dominated (dep, arr) pairs

Query errors return 400 with ``{"error": ...}``; infeasible journeys
return 200 with ``{"journey": null}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.planner import RoutePlanner


class PlannerService:
    """Serve one preprocessed planner over HTTP."""

    def __init__(self, planner: RoutePlanner) -> None:
        self.planner = planner
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Preprocess, bind, and serve on a daemon thread.

        Returns the bound port (use ``port=0`` to pick a free one).
        """
        self.planner.preprocess()
        handler = _make_handler(self.planner)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self._server.server_address[1]

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _make_handler(planner: RoutePlanner):
    graph = planner.graph

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # silence request logs
            return

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = {
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            }
            try:
                body = self._route(parsed.path, params)
            except (ReproError, KeyError, ValueError) as exc:
                self._send(400, {"error": str(exc)})
                return
            if body is None:
                self._send(404, {"error": f"unknown path: {parsed.path}"})
                return
            self._send(200, body)

        # --------------------------------------------------------------

        def _route(self, path: str, params: dict):
            if path == "/stations":
                return {
                    "stations": [
                        {"id": s, "name": graph.station_name(s)}
                        for s in range(graph.n)
                    ]
                }
            if path in ("/eap", "/ldp"):
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                if path == "/eap":
                    journey = planner.earliest_arrival(u, v, t)
                else:
                    journey = planner.latest_departure(u, v, t)
                return {
                    "journey": journey.to_dict() if journey else None
                }
            if path == "/sdp":
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                t_end = int(params["t_end"])
                journey = planner.shortest_duration(u, v, t, t_end)
                return {
                    "journey": journey.to_dict() if journey else None
                }
            if path == "/profile":
                profile = getattr(planner, "profile", None)
                if profile is None:
                    raise ValueError(
                        f"{planner.name} does not support profile queries"
                    )
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                t_end = int(params["t_end"])
                return {"pairs": profile(u, v, t, t_end)}
            return None

        def _send(self, status: int, body: dict) -> None:
            payload = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

    return Handler
