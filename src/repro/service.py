"""A minimal HTTP JSON API over a planner (stdlib only).

The deployment story the paper implies — build the index offline,
serve microsecond queries online — in a few hundred lines of standard
library, with production guard rails:

    from repro.datasets import load_dataset
    from repro.core import TTLPlanner
    from repro.service import PlannerService

    service = PlannerService(TTLPlanner(load_dataset("Berlin")))
    service.start(port=8080)          # non-blocking (daemon thread)

Query endpoints (GET, JSON responses):

* ``/healthz``                          — liveness + planner identity
* ``/healthz/live``                     — bare liveness probe
* ``/healthz/ready``                    — readiness (503 while warming
  or shedding)
* ``/metrics``                          — cumulative query counters
* ``/resilience``                       — deadline/gate/breaker state
* ``/stations``                         — id/name listing
* ``/eap?from=U&to=V&t=SECONDS``        — earliest arrival
* ``/ldp?from=U&to=V&t=SECONDS``        — latest departure
* ``/sdp?from=U&to=V&t=A&t_end=B``      — shortest duration
* ``/profile?from=U&to=V&t=A&t_end=B``  — non-dominated (dep, arr) pairs

When the planner is a :class:`~repro.live.engine.LiveOverlayEngine`,
disruption endpoints come alive:

* ``GET  /live/events``   — registered (id, event) pairs
* ``GET  /live/stats``    — fast-path / fallback / feed-skip counters
* ``POST /live/events``   — body = one event dict; returns its id
* ``POST /live/advance``  — body ``{"now": seconds}``; expires events
* ``POST /live/clear``    — body ``{"id": n}`` or ``{}`` for all

Every query request runs through the
:class:`~repro.resilience.ResilientExecutor` pipeline: a per-request
deadline (504 on expiry), a bounded in-flight admission gate (429 +
``Retry-After`` when shedding), and — for live engines — a circuit
breaker that, when tripped, serves TTL answers on the frozen base
timetable flagged ``"degraded": true`` instead of exact overlay
answers.  The full status-code contract:

====== =================================================================
status meaning
====== =================================================================
200    answered (infeasible journeys are ``{"journey": null}``)
400    invalid input (``{"error": ..., "field": ...}`` when one
       parameter is at fault)
404    unknown path
413    request body larger than the configured cap
429    shed by admission control (``Retry-After`` header)
500    unexpected internal error (JSON body; the handler thread
       survives)
501    unsupported HTTP method
503    not ready yet (index still building) or shedding
       (``Retry-After`` header)
504    request deadline exceeded
====== =================================================================

A service-level lock serializes planner access against overlay swaps,
so injecting an event while queries are in flight is safe; degraded
(frozen-graph) answers bypass the lock entirely, which is the point.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.errors import (
    DeadlineExceeded,
    FaultInjected,
    Overloaded,
    PayloadTooLarge,
    ReproError,
    RequestValidationError,
    ServiceNotReady,
)
from repro.live.engine import LiveOverlayEngine
from repro.live.events import event_from_dict
from repro.planner import RoutePlanner
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    ResilientExecutor,
)
from urllib.parse import parse_qs, urlparse


class PlannerService:
    """Serve one preprocessed planner over HTTP."""

    def __init__(
        self,
        planner: RoutePlanner,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        """Wrap ``planner`` for serving.

        Args:
            planner: any :class:`~repro.planner.RoutePlanner`.
            resilience: deadline/gate/breaker knobs (defaults are
                permissive; pass ``ResilienceConfig(enabled=False)``
                for the bare pre-resilience pipeline).
            fault_plan: optional chaos plan; its rules fire at the
                documented injection sites.
            breaker: pre-built circuit breaker (tests inject one with
                a fake clock); by default one is constructed for live
                engines from the config.
        """
        self.planner = planner
        self.config = resilience or ResilienceConfig()
        #: Serializes planner access against live overlay swaps.
        self.lock = threading.RLock()
        self._live = (
            planner if isinstance(planner, LiveOverlayEngine) else None
        )
        injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.executor = ResilientExecutor(
            self.config, breaker=breaker, injector=injector
        )
        if (
            breaker is None
            and self._live is not None
            and self.config.enabled
            and self.config.breaker_enabled
        ):
            self.executor.breaker = self.executor.make_breaker()
        self._ready = threading.Event()
        self._warm_error: Optional[str] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._warm_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(
        self, host: str = "127.0.0.1", port: int = 0, warm: bool = True
    ) -> int:
        """Bind and serve on a daemon thread; returns the bound port.

        With ``warm=True`` (default) preprocessing happens before the
        socket binds, so the first request already finds a ready
        service — the historical behavior.  With ``warm=False`` the
        socket binds immediately and the index builds on a background
        thread; until it finishes, query endpoints and
        ``/healthz/ready`` answer 503 (liveness stays 200), which is
        the contract a rolling deployment's health checks rely on.
        """
        if warm:
            self._warm_up()
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        if not warm:
            self._warm_thread = threading.Thread(
                target=self._warm_up, daemon=True
            )
            self._warm_thread.start()
        return self._server.server_address[1]

    def _warm_up(self) -> None:
        try:
            if self.executor.injector is not None:
                self.executor.injector.fire("service.preprocess")
            self.planner.preprocess()
        except Exception as exc:  # surfaced via readiness, not a crash
            self._warm_error = f"{exc.__class__.__name__}: {exc}"
            return
        self._ready.set()

    @property
    def ready(self) -> bool:
        """True once preprocessing finished."""
        return self._ready.is_set()

    def stop(self) -> None:
        """Shut the server down and join the threads."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._warm_thread is not None:
            self._warm_thread.join(timeout=5)
            self._warm_thread = None


def _int_param(params: Dict[str, str], name: str) -> int:
    """Parse one required integer query parameter, naming the field
    in the error so clients see exactly what to fix."""
    if name not in params:
        raise RequestValidationError(
            f"missing required query parameter: {name!r}", field=name
        )
    try:
        return int(params[name])
    except (TypeError, ValueError):
        raise RequestValidationError(
            f"query parameter {name!r} must be an integer, "
            f"got {params[name]!r}",
            field=name,
        ) from None


def _int_field(body: dict, name: str) -> int:
    """Parse one required integer JSON body field."""
    if name not in body:
        raise RequestValidationError(
            f"missing required body field: {name!r}", field=name
        )
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise RequestValidationError(
            f"body field {name!r} must be an integer, got {value!r}",
            field=name,
        )
    try:
        return int(value)
    except ValueError:
        raise RequestValidationError(
            f"body field {name!r} must be an integer, got {value!r}",
            field=name,
        ) from None


def _make_handler(service: PlannerService):
    planner = service.planner
    graph = planner.graph
    lock = service.lock
    live = service._live
    executor = service.executor
    config = service.config

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # silence request logs
            return

        def send_error(  # noqa: N802 (http.server API)
            self, code, message=None, explain=None
        ) -> None:
            # The base class renders HTML error pages (e.g. 501 for
            # unsupported methods); keep the API JSON end to end.
            if message is None:
                message = self.responses.get(code, ("error",))[0]
            self._send(code, {"error": message})

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = {
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            }
            self._dispatch(lambda: self._route_get(parsed.path, params))

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            self._dispatch(
                lambda: self._route_post(parsed.path, self._read_body())
            )

        def _dispatch(self, route) -> None:
            try:
                body = route()
            except Overloaded as exc:
                self._send(
                    429,
                    {"error": str(exc)},
                    headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except ServiceNotReady as exc:
                body = {"error": str(exc)}
                build = self._build_progress()
                if build is not None:
                    body["build"] = build
                self._send(
                    503,
                    body,
                    headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except DeadlineExceeded as exc:
                self._send(504, {"error": str(exc)})
                return
            except PayloadTooLarge as exc:
                self._send(413, {"error": str(exc)})
                return
            except RequestValidationError as exc:
                self._send(400, {"error": str(exc), "field": exc.field})
                return
            except FaultInjected as exc:
                self._send(500, {"error": f"internal error: {exc}"})
                return
            except (ReproError, KeyError, ValueError) as exc:
                self._send(400, {"error": str(exc)})
                return
            except Exception as exc:  # never kill the handler thread
                self._send(
                    500,
                    {
                        "error": "internal error: "
                        f"{exc.__class__.__name__}: {exc}"
                    },
                )
                return
            if body is None:
                self._send(404, {"error": f"unknown path: {self.path}"})
                return
            self._send(200, body)

        def _read_body(self) -> dict:
            raw_length = self.headers.get("Content-Length", 0) or 0
            try:
                length = int(raw_length)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"invalid Content-Length: {raw_length!r}",
                    field="Content-Length",
                ) from None
            if length < 0:
                raise RequestValidationError(
                    f"invalid Content-Length: {raw_length!r}",
                    field="Content-Length",
                )
            if length > config.max_body_bytes:
                raise PayloadTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{config.max_body_bytes} byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed JSON body: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError("JSON body must be an object")
            return data

        # --------------------------------------------------------------

        def _build_progress(self):
            """Build-farm progress payload while warming, else None."""
            if service._ready.is_set():
                return None
            tracker = getattr(planner, "build_progress", None)
            if tracker is None:
                return None
            return tracker.snapshot().as_dict()

        def _require_ready(self) -> None:
            if not service._ready.is_set():
                reason = (
                    f"preprocessing failed: {service._warm_error}"
                    if service._warm_error is not None
                    else "service is warming up (index still building)"
                )
                raise ServiceNotReady(
                    reason, retry_after=config.retry_after_s
                )

        def _query(self, exact, degraded):
            """Run a query through the resilience pipeline."""
            self._require_ready()
            result, is_degraded = executor.run(
                exact,
                lock=lock,
                degraded_fn=degraded if live is not None else None,
            )
            return result, is_degraded

        def _journey_body(self, exact, degraded) -> dict:
            journey, is_degraded = self._query(exact, degraded)
            body = {"journey": journey.to_dict() if journey else None}
            if live is not None:
                body["degraded"] = is_degraded
            return body

        def _route_get(self, path: str, params: dict):
            if path == "/healthz":
                body = {
                    "status": "ok",
                    "planner": planner.name,
                    "stations": graph.n,
                    "live": live is not None,
                    "ready": service._ready.is_set(),
                    "preprocess_seconds": planner.preprocess_seconds,
                }
                build = self._build_progress()
                if build is not None:
                    body["build"] = build
                if live is not None:
                    with lock:
                        body["now"] = live.now
                        body["generation"] = live.generation
                        body["events"] = len(live.events())
                return body
            if path == "/healthz/live":
                return {"status": "alive"}
            if path == "/healthz/ready":
                self._require_ready()
                if config.enabled and executor.admission.shedding:
                    raise ServiceNotReady(
                        "shedding load (admission gate saturated)",
                        retry_after=config.retry_after_s,
                    )
                return {"ready": True}
            if path == "/resilience":
                return executor.snapshot()
            if path == "/metrics":
                body = {"planner": planner.name}
                metrics = getattr(planner, "metrics", None)
                with lock:
                    if metrics is not None:
                        body["query_metrics"] = metrics.snapshot()
                    if service._ready.is_set():
                        index = getattr(planner, "index", None)
                        if index is not None:
                            body["index"] = {
                                "num_labels": index.num_labels,
                                "unfold_fallbacks": index.unfold_fallbacks,
                                "store_bytes": index.store_bytes(),
                            }
                body["resilience"] = executor.snapshot()
                return body
            if path == "/stations":
                return {
                    "stations": [
                        {"id": s, "name": graph.station_name(s)}
                        for s in range(graph.n)
                    ]
                }
            if path in ("/eap", "/ldp"):
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                if path == "/eap":
                    return self._journey_body(
                        lambda: planner.earliest_arrival(u, v, t),
                        lambda: live.frozen.earliest_arrival(u, v, t)
                        if live is not None
                        else None,
                    )
                return self._journey_body(
                    lambda: planner.latest_departure(u, v, t),
                    lambda: live.frozen.latest_departure(u, v, t)
                    if live is not None
                    else None,
                )
            if path == "/sdp":
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                t_end = _int_param(params, "t_end")
                return self._journey_body(
                    lambda: planner.shortest_duration(u, v, t, t_end),
                    lambda: live.frozen.shortest_duration(u, v, t, t_end)
                    if live is not None
                    else None,
                )
            if path == "/profile":
                profile = getattr(planner, "profile", None)
                if profile is None:
                    raise ValueError(
                        f"{planner.name} does not support profile queries"
                    )
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                t_end = _int_param(params, "t_end")
                pairs, is_degraded = self._query(
                    lambda: profile(u, v, t, t_end),
                    lambda: live.frozen.profile(u, v, t, t_end)
                    if live is not None
                    else None,
                )
                body = {"pairs": pairs}
                if live is not None:
                    body["degraded"] = is_degraded
                return body
            if path == "/live/events":
                self._require_live()
                with lock:
                    events = live.events()
                return {
                    "events": [
                        {"id": eid, "event": event.to_dict()}
                        for eid, event in events
                    ]
                }
            if path == "/live/stats":
                self._require_live()
                with lock:
                    body = live.stats.snapshot()
                    body["generation"] = live.generation
                    body["now"] = live.now
                    body["feed_skipped"] = live.feed_skipped
                return body
            return None

        def _route_post(self, path: str, body: dict):
            if path == "/live/events":
                self._require_live()
                self._require_ready()
                event = event_from_dict(body)
                with lock:
                    event_id = live.apply_event(event)
                    generation = live.generation
                return {"id": event_id, "generation": generation}
            if path == "/live/advance":
                self._require_live()
                self._require_ready()
                now = _int_field(body, "now")
                with lock:
                    live.advance_to(now)
                    remaining = len(live.events())
                return {"now": now, "events": remaining}
            if path == "/live/clear":
                self._require_live()
                self._require_ready()
                with lock:
                    if "id" in body:
                        live.clear_event(_int_field(body, "id"))
                        cleared = 1
                    else:
                        cleared = live.clear_all()
                return {"cleared": cleared}
            return None

        def _require_live(self) -> None:
            if live is None:
                raise ValueError(
                    f"{planner.name} is not a live engine; start the "
                    "service with a LiveOverlayEngine to use /live/*"
                )

        def _send(
            self,
            status: int,
            body: dict,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            try:
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                if headers:
                    for key, value in headers.items():
                        self.send_header(key, value)
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

    return Handler


def _retry_after(seconds: float) -> str:
    """Retry-After wants whole seconds; round up, floor at 1."""
    return str(max(1, int(seconds + 0.999)))
