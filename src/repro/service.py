"""A minimal HTTP JSON API over a planner (stdlib only).

The deployment story the paper implies — build the index offline,
serve microsecond queries online — in a couple hundred lines of
standard library:

    from repro.datasets import load_dataset
    from repro.core import TTLPlanner
    from repro.service import PlannerService

    service = PlannerService(TTLPlanner(load_dataset("Berlin")))
    service.start(port=8080)          # non-blocking (daemon thread)

Query endpoints (GET, JSON responses):

* ``/healthz``                          — liveness + planner identity
* ``/metrics``                          — cumulative query counters
* ``/stations``                         — id/name listing
* ``/eap?from=U&to=V&t=SECONDS``        — earliest arrival
* ``/ldp?from=U&to=V&t=SECONDS``        — latest departure
* ``/sdp?from=U&to=V&t=A&t_end=B``      — shortest duration
* ``/profile?from=U&to=V&t=A&t_end=B``  — non-dominated (dep, arr) pairs

When the planner is a :class:`~repro.live.engine.LiveOverlayEngine`,
disruption endpoints come alive:

* ``GET  /live/events``   — registered (id, event) pairs
* ``GET  /live/stats``    — fast-path / fallback counters
* ``POST /live/events``   — body = one event dict; returns its id
* ``POST /live/advance``  — body ``{"now": seconds}``; expires events
* ``POST /live/clear``    — body ``{"id": n}`` or ``{}`` for all

Every error — including unknown paths and unsupported methods — is a
JSON body ``{"error": ...}`` with the matching status code; infeasible
journeys return 200 with ``{"journey": null}``.  A service-level lock
serializes planner access against overlay swaps, so injecting an event
while queries are in flight is safe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.live.engine import LiveOverlayEngine
from repro.live.events import event_from_dict
from repro.planner import RoutePlanner


class PlannerService:
    """Serve one preprocessed planner over HTTP."""

    def __init__(self, planner: RoutePlanner) -> None:
        self.planner = planner
        #: Serializes planner access against live overlay swaps.
        self.lock = threading.RLock()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Preprocess, bind, and serve on a daemon thread.

        Returns the bound port (use ``port=0`` to pick a free one).
        """
        self.planner.preprocess()
        handler = _make_handler(self.planner, self.lock)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self._server.server_address[1]

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _make_handler(planner: RoutePlanner, lock: threading.RLock):
    graph = planner.graph
    live = planner if isinstance(planner, LiveOverlayEngine) else None

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # silence request logs
            return

        def send_error(  # noqa: N802 (http.server API)
            self, code, message=None, explain=None
        ) -> None:
            # The base class renders HTML error pages (e.g. 501 for
            # unsupported methods); keep the API JSON end to end.
            if message is None:
                message = self.responses.get(code, ("error",))[0]
            self._send(code, {"error": message})

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = {
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            }
            self._dispatch(lambda: self._route_get(parsed.path, params))

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            self._dispatch(
                lambda: self._route_post(parsed.path, self._read_body())
            )

        def _dispatch(self, route) -> None:
            try:
                body = route()
            except (ReproError, KeyError, ValueError) as exc:
                self._send(400, {"error": str(exc)})
                return
            if body is None:
                self._send(404, {"error": f"unknown path: {self.path}"})
                return
            self._send(200, body)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed JSON body: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError("JSON body must be an object")
            return data

        # --------------------------------------------------------------

        def _route_get(self, path: str, params: dict):
            if path == "/healthz":
                body = {
                    "status": "ok",
                    "planner": planner.name,
                    "stations": graph.n,
                    "live": live is not None,
                    "preprocess_seconds": planner.preprocess_seconds,
                }
                if live is not None:
                    with lock:
                        body["now"] = live.now
                        body["generation"] = live.generation
                        body["events"] = len(live.events())
                return body
            if path == "/metrics":
                body = {"planner": planner.name}
                metrics = getattr(planner, "metrics", None)
                index = getattr(planner, "index", None)
                with lock:
                    if metrics is not None:
                        body["query_metrics"] = metrics.snapshot()
                    if index is not None:
                        body["index"] = {
                            "num_labels": index.num_labels,
                            "unfold_fallbacks": index.unfold_fallbacks,
                            "store_bytes": index.store_bytes(),
                        }
                return body
            if path == "/stations":
                return {
                    "stations": [
                        {"id": s, "name": graph.station_name(s)}
                        for s in range(graph.n)
                    ]
                }
            if path in ("/eap", "/ldp"):
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                with lock:
                    if path == "/eap":
                        journey = planner.earliest_arrival(u, v, t)
                    else:
                        journey = planner.latest_departure(u, v, t)
                return {
                    "journey": journey.to_dict() if journey else None
                }
            if path == "/sdp":
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                t_end = int(params["t_end"])
                with lock:
                    journey = planner.shortest_duration(u, v, t, t_end)
                return {
                    "journey": journey.to_dict() if journey else None
                }
            if path == "/profile":
                profile = getattr(planner, "profile", None)
                if profile is None:
                    raise ValueError(
                        f"{planner.name} does not support profile queries"
                    )
                u = int(params["from"])
                v = int(params["to"])
                t = int(params["t"])
                t_end = int(params["t_end"])
                with lock:
                    pairs = profile(u, v, t, t_end)
                return {"pairs": pairs}
            if path == "/live/events":
                self._require_live()
                with lock:
                    events = live.events()
                return {
                    "events": [
                        {"id": eid, "event": event.to_dict()}
                        for eid, event in events
                    ]
                }
            if path == "/live/stats":
                self._require_live()
                with lock:
                    body = live.stats.snapshot()
                    body["generation"] = live.generation
                    body["now"] = live.now
                return body
            return None

        def _route_post(self, path: str, body: dict):
            if path == "/live/events":
                self._require_live()
                event = event_from_dict(body)
                with lock:
                    event_id = live.apply_event(event)
                    generation = live.generation
                return {"id": event_id, "generation": generation}
            if path == "/live/advance":
                self._require_live()
                now = int(body["now"])
                with lock:
                    live.advance_to(now)
                    remaining = len(live.events())
                return {"now": now, "events": remaining}
            if path == "/live/clear":
                self._require_live()
                with lock:
                    if "id" in body:
                        live.clear_event(int(body["id"]))
                        cleared = 1
                    else:
                        cleared = live.clear_all()
                return {"cleared": cleared}
            return None

        def _require_live(self) -> None:
            if live is None:
                raise ValueError(
                    f"{planner.name} is not a live engine; start the "
                    "service with a LiveOverlayEngine to use /live/*"
                )

        def _send(self, status: int, body: dict) -> None:
            payload = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

    return Handler
