"""A minimal HTTP JSON API over a planner (stdlib only).

The deployment story the paper implies — build the index offline,
serve microsecond queries online — in a few hundred lines of standard
library, with production guard rails:

    from repro.datasets import load_dataset
    from repro.core import TTLPlanner
    from repro.service import PlannerService

    service = PlannerService(TTLPlanner(load_dataset("Berlin")))
    service.start(port=8080)          # non-blocking (daemon thread)

The current API is **versioned**: every endpoint answers under a
``/v1`` prefix, where successful responses use a uniform envelope::

    {"data": <the result>, "meta": {"elapsed_us": ..., "degraded": ...,
                                    "worker": ...}}

``meta.elapsed_us`` is server-side handling time, ``meta.degraded``
flags circuit-broken frozen-timetable answers, and ``meta.worker``
identifies the serving process under prefork multi-worker serving
(:mod:`repro.serving`).  The bare legacy paths keep answering with
their historical (un-enveloped) bodies but carry a
``Deprecation: true`` header; see ``docs/api.md`` for the migration
table.

Query endpoints (GET, JSON responses, shown with the ``/v1`` prefix):

* ``/v1/healthz``                          — liveness + planner identity
* ``/v1/healthz/live``                     — bare liveness probe
* ``/v1/healthz/ready``                    — readiness (503 while
  warming or shedding)
* ``/v1/metrics``                          — cumulative query counters
* ``/v1/resilience``                       — deadline/gate/breaker state
* ``/v1/stations``                         — id/name listing
* ``/v1/eap?from=U&to=V&t=SECONDS``        — earliest arrival
* ``/v1/ldp?from=U&to=V&t=SECONDS``        — latest departure
* ``/v1/sdp?from=U&to=V&t=A&t_end=B``      — shortest duration
* ``/v1/profile?from=U&to=V&t=A&t_end=B``  — non-dominated (dep, arr)
  pairs

Batched accessibility queries go through one POST instead of N GETs:

* ``POST /v1/batch`` with body ``{"kind": "one_to_many", "source": U,
  "targets": [...], "t": T}``, ``{"kind": "matrix", "sources": [...],
  "targets": [...], "t": T}``, or ``{"kind": "isochrone", "source": U,
  "t": T, "budget": B}``.  Workloads larger than
  ``ResilienceConfig.max_batch_pairs`` pairs are rejected with 400
  (and bodies above ``max_body_bytes`` with 413, as everywhere).

When the planner is a :class:`~repro.live.engine.LiveOverlayEngine`,
disruption endpoints come alive:

* ``GET  /live/events``   — registered (id, event) pairs
* ``GET  /live/stats``    — fast-path / fallback / feed-skip counters
* ``POST /live/events``   — body = one event dict; returns its id
* ``POST /live/advance``  — body ``{"now": seconds}``; expires events
* ``POST /live/clear``    — body ``{"id": n}`` or ``{}`` for all

Every query request runs through the
:class:`~repro.resilience.ResilientExecutor` pipeline: a per-request
deadline (504 on expiry), a bounded in-flight admission gate (429 +
``Retry-After`` when shedding), and — for live engines — a circuit
breaker that, when tripped, serves TTL answers on the frozen base
timetable flagged ``"degraded": true`` instead of exact overlay
answers.  The full status-code contract:

Every error — any method, any version, any status — carries one JSON
shape: ``{"error": <message>, "field": <offending parameter or null>,
"hint": <actionable suggestion or null>}``.  The CLI prints the same
triple on stderr.  The full status-code contract:

====== =================================================================
status meaning
====== =================================================================
200    answered (infeasible journeys are ``{"journey": null}``)
400    invalid input (``field`` names the culprit when one parameter
       is at fault)
404    unknown path
413    request body larger than the configured cap
429    shed by admission control (``Retry-After`` header)
500    unexpected internal error (JSON body; the handler thread
       survives)
501    unsupported HTTP method
503    not ready yet (index still building) or shedding
       (``Retry-After`` header)
504    request deadline exceeded
====== =================================================================

A service-level lock serializes planner access against overlay swaps,
so injecting an event while queries are in flight is safe; degraded
(frozen-graph) answers bypass the lock entirely, which is the point.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.core.batch import batch_plan
from repro.errors import (
    ConflictError,
    DeadlineExceeded,
    FaultInjected,
    Overloaded,
    PayloadTooLarge,
    ReproError,
    RequestValidationError,
    ServiceNotReady,
)
from repro.live.engine import LiveOverlayEngine
from repro.live.events import event_from_dict
from repro.planner import RoutePlanner
from repro.query import BATCH_KINDS, BatchQuery, QueryRequest
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    ResilientExecutor,
)
from urllib.parse import parse_qs, urlparse


class PlannerService:
    """Serve one preprocessed planner over HTTP."""

    def __init__(
        self,
        planner: RoutePlanner,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        breaker: Optional[CircuitBreaker] = None,
        worker_id: int = 0,
        scoreboard=None,
        journal=None,
        coordinator: Optional[str] = None,
        epoch: Optional[str] = None,
    ) -> None:
        """Wrap ``planner`` for serving.

        Args:
            planner: any :class:`~repro.planner.RoutePlanner`.
            resilience: deadline/gate/breaker knobs (defaults are
                permissive; pass ``ResilienceConfig(enabled=False)``
                for the bare pre-resilience pipeline).
            fault_plan: optional chaos plan; its rules fire at the
                documented injection sites.
            breaker: pre-built circuit breaker (tests inject one with
                a fake clock); by default one is constructed for live
                engines from the config.
            worker_id: identity reported in ``meta.worker`` of ``/v1``
                envelopes; the prefork supervisor numbers its workers,
                single-process serving keeps the default ``0``.
            scoreboard: shared
                :class:`~repro.serving.scoreboard.Scoreboard` under
                prefork serving.  When set, ``/metrics`` carries
                cluster-aggregated counters and ``/healthz`` carries
                per-worker liveness, both read from shared memory by
                whichever worker answers.
            journal: a :class:`~repro.serving.journal.LiveJournal`
                this service *writes* — the supervisor's control-plane
                role.  Live mutations are applied to the local (live)
                planner, durably appended, and only then acknowledged;
                responses carry the assigned ``seq``.
            coordinator: URL of the supervisor's coordinated mutation
                endpoint — the prefork *worker* role.  When set, live
                mutation POSTs answer 409 pointing clients at the
                coordinated path; this worker's live state changes only
                through its journal follower.
            epoch: deployment-level cache-epoch component (e.g. a
                federation manifest epoch plus region id).  Folded into
                :meth:`cache_epoch` so answers cached against one
                shard/manifest can never be served from another whose
                graph happens to have identical ``(n, m, labels)``
                counts.
        """
        if journal is not None and coordinator is not None:
            raise ValueError(
                "a service is either the journal writer or a "
                "coordinated worker, never both"
            )
        self.planner = planner
        self.worker_id = worker_id
        self.scoreboard = scoreboard
        self.journal = journal
        self.coordinator = coordinator
        #: Worker-side journal tail (set by worker_main under prefork
        #: live serving); readiness requires it to have caught up.
        self.journal_follower = None
        #: Journal records that failed to apply locally (should stay 0:
        #: the supervisor validated them before appending).
        self.journal_skipped = 0
        #: Spawn generation under prefork serving (set by worker_main).
        self.generation = 0
        #: Requests handled (any endpoint, any status) — fed to the
        #: prefork scoreboard and summed across workers in /metrics.
        self.requests_handled = 0
        self.config = resilience or ResilienceConfig()
        #: Per-worker hot-pair answer cache (None when disabled).  Its
        #: taint-driven invalidation runs under :attr:`lock` on every
        #: live mutation; see repro/serving/cache.py.
        self.cache = None
        if self.config.cache_size > 0:
            from repro.serving.cache import AnswerCache

            self.cache = AnswerCache(
                self.config.cache_size,
                bucket_s=self.config.cache_bucket_s,
            )
        self._epoch: Optional[str] = None
        self._epoch_override = epoch
        #: Federation worker role (set by the federated serving path):
        #: an object whose ``handle(subpath, body)`` answers the
        #: internal ``POST /fed/*`` stitch primitives.
        self.fed = None
        #: Serializes planner access against live overlay swaps.
        self.lock = threading.RLock()
        self._live = (
            planner if isinstance(planner, LiveOverlayEngine) else None
        )
        injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.executor = ResilientExecutor(
            self.config, breaker=breaker, injector=injector
        )
        if (
            breaker is None
            and self._live is not None
            and self.config.enabled
            and self.config.breaker_enabled
        ):
            self.executor.breaker = self.executor.make_breaker()
        self._ready = threading.Event()
        self._warm_error: Optional[str] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._warm_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        warm: bool = True,
        sock: Optional[socket.socket] = None,
    ) -> int:
        """Bind and serve on a daemon thread; returns the bound port.

        With ``warm=True`` (default) preprocessing happens before the
        socket binds, so the first request already finds a ready
        service — the historical behavior.  With ``warm=False`` the
        socket binds immediately and the index builds on a background
        thread; until it finishes, query endpoints and
        ``/healthz/ready`` answer 503 (liveness stays 200), which is
        the contract a rolling deployment's health checks rely on.

        ``sock`` adopts an already-bound, already-listening socket
        instead of binding a fresh one — the prefork path, where the
        supervisor binds once and every forked worker ``accept()``\\ s
        on the shared descriptor.  ``host``/``port`` are ignored then.
        """
        if warm:
            self._warm_up()
        handler = _make_handler(self)
        if sock is not None:
            self._server = _adopt_socket(handler, sock)
        else:
            self._server = ThreadingHTTPServer((host, port), handler)
        # Non-daemon handler threads: ThreadingMixIn only *tracks*
        # (and so server_close() only joins) non-daemon threads.  This
        # is what makes stop() a graceful drain — an accepted request
        # always gets its response before the listener's fd dies, the
        # guarantee the supervisor's SIGTERM drain path is built on.
        # The bound comes from per-request deadlines plus the
        # supervisor's SIGKILL escalation, not from abandoning work.
        self._server.daemon_threads = False
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        if not warm:
            self._warm_thread = threading.Thread(
                target=self._warm_up, daemon=True
            )
            self._warm_thread.start()
        return self._server.server_address[1]

    def _warm_up(self) -> None:
        try:
            if self.executor.injector is not None:
                self.executor.injector.fire("service.preprocess")
            self.planner.preprocess()
        except Exception as exc:  # surfaced via readiness, not a crash
            self._warm_error = f"{exc.__class__.__name__}: {exc}"
            return
        self._ready.set()

    @property
    def ready(self) -> bool:
        """True once preprocessing finished."""
        return self._ready.is_set()

    def counters(self) -> Dict[str, int]:
        """Flat cumulative counters for cross-process aggregation.

        The prefork scoreboard publishes exactly these fields; the
        supervisor sums them across workers (plus retired totals from
        dead workers) so aggregated ``/metrics`` stays monotonic.
        """
        counters = {
            "requests": self.requests_handled,
            "queries": 0,
            "labels_scanned": 0,
            "sketches_generated": 0,
            "unfold_fallbacks": 0,
            "deadline_exceeded": 0,
            "degraded_served": 0,
            "shed": 0,
        }
        metrics = getattr(self.planner, "metrics", None)
        if metrics is not None:
            counters["queries"] = metrics.queries
            counters["labels_scanned"] = metrics.labels_scanned
            counters["sketches_generated"] = metrics.sketches_generated
            counters["unfold_fallbacks"] = metrics.unfold_fallbacks
        snapshot = self.executor.snapshot()
        counters["deadline_exceeded"] = snapshot.get("deadline_exceeded", 0)
        counters["degraded_served"] = snapshot.get("degraded_served", 0)
        counters["shed"] = snapshot.get("admission", {}).get("shed", 0)
        counters.update(
            self.cache.counters()
            if self.cache is not None
            else {
                "cache_hits": 0,
                "cache_misses": 0,
                "cache_evictions": 0,
                "cache_invalidations": 0,
            }
        )
        return counters

    def cache_epoch(self) -> str:
        """Fingerprint of the timetable + sealed index this worker
        serves — a cache-key component, so answers computed on one
        index can never be resurrected against another.  Only
        meaningful once the service is ready."""
        if self._epoch is None:
            graph = self.planner.graph
            index = getattr(self.planner, "index", None)
            labels = index.num_labels if index is not None else 0
            epoch = f"{graph.n}.{graph.m}.{labels}"
            if self._epoch_override is not None:
                # Shape counts alone collide across shards/manifests
                # (two region shards can share (n, m, labels)); the
                # deployment-level component disambiguates.
                epoch = f"{self._epoch_override}.{epoch}"
            self._epoch = epoch
        return self._epoch

    def live_generation(self) -> int:
        """The live engine's patch generation (0 for static planners).

        Published per worker through the scoreboard so cross-worker
        divergence — the thing the journal fan-out exists to close —
        is observable from ``/healthz`` and ``/v1/metrics``.
        """
        return self._live.generation if self._live is not None else 0

    def journal_seq(self) -> int:
        """Last journal record applied (writer: last appended)."""
        if self.journal_follower is not None:
            return self.journal_follower.applied_seq
        if self.journal is not None:
            return self.journal.seq
        return 0

    def revalidate_cache(self) -> None:
        """Taint-driven cache sweep after a live mutation (caller holds
        :attr:`lock`).  Entries whose static answers the TaintAnalyzer
        certifies against the new patch-set are re-keyed to the new
        generation; the rest are evicted."""
        live = self._live
        if self.cache is None or live is None:
            return
        self.cache.revalidate(
            live.generation,
            certify=lambda entry: live.static_answer_valid(
                entry.query_type,
                entry.origin,
                entry.destination,
                entry.t,
                entry.t_end,
            ),
        )

    def apply_journal_record(self, record: dict) -> None:
        """Apply one journal record under the overlay-swap lock.

        The worker-side fan-out path: the follower thread calls this
        for every durable frame, in order, so the same taint-driven
        cache revalidation that guards direct mutations runs per
        worker per record.  Records the supervisor validated before
        appending should never fail here; one that does is counted and
        skipped rather than wedging the follower behind it forever.
        """
        if self._live is None:
            return
        from repro.serving.journal import apply_record

        with self.lock:
            try:
                apply_record(self._live, record)
            except ReproError:
                self.journal_skipped += 1
                return
            self.revalidate_cache()

    def publish_counters(self) -> None:
        """Push this worker's counters to the shared scoreboard now
        (the worker heartbeat loop also does this periodically)."""
        if self.scoreboard is not None:
            self.scoreboard.publish(
                self.worker_id,
                self.counters(),
                pid=os.getpid(),
                generation=self.generation,
                live_generation=self.live_generation(),
                journal_seq=self.journal_seq(),
            )

    def stop(self) -> None:
        """Shut the server down and join the threads."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._warm_thread is not None:
            self._warm_thread.join(timeout=5)
            self._warm_thread = None


def _int_param(params: Dict[str, str], name: str) -> int:
    """Parse one required integer query parameter, naming the field
    in the error so clients see exactly what to fix."""
    if name not in params:
        raise RequestValidationError(
            f"missing required query parameter: {name!r}", field=name
        )
    try:
        return int(params[name])
    except (TypeError, ValueError):
        raise RequestValidationError(
            f"query parameter {name!r} must be an integer, "
            f"got {params[name]!r}",
            field=name,
        ) from None


def _int_field(body: dict, name: str) -> int:
    """Parse one required integer JSON body field."""
    if name not in body:
        raise RequestValidationError(
            f"missing required body field: {name!r}", field=name
        )
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise RequestValidationError(
            f"body field {name!r} must be an integer, got {value!r}",
            field=name,
        )
    try:
        return int(value)
    except ValueError:
        raise RequestValidationError(
            f"body field {name!r} must be an integer, got {value!r}",
            field=name,
        ) from None


def _make_handler(service: PlannerService):
    planner = service.planner
    graph = planner.graph
    lock = service.lock
    live = service._live
    executor = service.executor
    config = service.config
    scoreboard = service.scoreboard
    cache = service.cache

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:  # silence request logs
            return

        def send_error(  # noqa: N802 (http.server API)
            self, code, message=None, explain=None
        ) -> None:
            # The base class renders HTML error pages (e.g. 501 for
            # unsupported methods); keep the API JSON end to end.
            if message is None:
                message = self.responses.get(code, ("error",))[0]
            self._send(code, _error_body(message))

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = {
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            }
            versioned, path = _split_api_version(parsed.path)
            self._dispatch(
                versioned, path, lambda: self._route_get(path, params)
            )

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            versioned, path = _split_api_version(parsed.path)
            self._dispatch(
                versioned,
                path,
                lambda: self._route_post(
                    path, self._read_body(), versioned
                ),
            )

        def _dispatch(self, versioned: bool, path: str, route) -> None:
            started = time.perf_counter()
            service.requests_handled += 1
            try:
                body = route()
            except Overloaded as exc:
                self._send(
                    429,
                    _error_body(exc),
                    headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except ServiceNotReady as exc:
                body = _error_body(exc)
                build = self._build_progress()
                if build is not None:
                    body["build"] = build
                self._send(
                    503,
                    body,
                    headers={"Retry-After": _retry_after(exc.retry_after)},
                )
                return
            except DeadlineExceeded as exc:
                self._send(504, _error_body(exc))
                return
            except PayloadTooLarge as exc:
                self._send(413, _error_body(exc))
                return
            except RequestValidationError as exc:
                self._send(400, _error_body(exc))
                return
            except ConflictError as exc:
                self._send(409, _error_body(exc))
                return
            except FaultInjected as exc:
                self._send(500, _error_body(f"internal error: {exc}"))
                return
            except (ReproError, KeyError, ValueError) as exc:
                self._send(400, _error_body(exc))
                return
            except Exception as exc:  # never kill the handler thread
                self._send(
                    500,
                    _error_body(
                        "internal error: "
                        f"{exc.__class__.__name__}: {exc}"
                    ),
                )
                return
            if body is None:
                self._send(404, _error_body(f"unknown path: {self.path}"))
                return
            headers = None
            if versioned:
                degraded = False
                if isinstance(body, dict):
                    degraded = bool(body.pop("degraded", False))
                body = {
                    "data": body,
                    "meta": {
                        "elapsed_us": int(
                            (time.perf_counter() - started) * 1e6
                        ),
                        "degraded": degraded,
                        "worker": service.worker_id,
                    },
                }
            elif not path.startswith("/healthz"):
                # Legacy unversioned query surface: still answers, but
                # tells clients to move to /v1 (docs/api.md has the
                # migration table).
                headers = {"Deprecation": "true"}
            self._send(200, body, headers=headers)

        def _read_body(self) -> dict:
            raw_length = self.headers.get("Content-Length", 0) or 0
            try:
                length = int(raw_length)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"invalid Content-Length: {raw_length!r}",
                    field="Content-Length",
                ) from None
            if length < 0:
                raise RequestValidationError(
                    f"invalid Content-Length: {raw_length!r}",
                    field="Content-Length",
                )
            if length > config.max_body_bytes:
                self._discard_body(length)
                raise PayloadTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{config.max_body_bytes} byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed JSON body: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError("JSON body must be an object")
            return data

        def _discard_body(self, length: int) -> None:
            """Drain an oversized request body (bounded) before the
            413 goes out, so a client mid-upload finishes its write and
            reads the response instead of dying on EPIPE.  Bodies
            beyond the drain bound just get the connection closed."""
            remaining = min(length, 4 * config.max_body_bytes)
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True

        # --------------------------------------------------------------

        def _build_progress(self):
            """Build-farm progress payload while warming, else None."""
            if service._ready.is_set():
                return None
            tracker = getattr(planner, "build_progress", None)
            if tracker is None:
                return None
            return tracker.snapshot().as_dict()

        def _require_ready(self) -> None:
            if not service._ready.is_set():
                reason = (
                    f"preprocessing failed: {service._warm_error}"
                    if service._warm_error is not None
                    else "service is warming up (index still building)"
                )
                raise ServiceNotReady(
                    reason, retry_after=config.retry_after_s
                )
            follower = service.journal_follower
            if follower is not None and not follower.caught_up.is_set():
                # A worker that has not replayed the live-event journal
                # to its tail could serve pre-disruption answers; it
                # must not report ready or answer queries until caught
                # up (the replay-to-ready contract).
                raise ServiceNotReady(
                    "replaying live-event journal "
                    f"(applied seq {follower.applied_seq})",
                    retry_after=config.retry_after_s,
                )

        def _query(self, exact, degraded):
            """Run a query through the resilience pipeline."""
            self._require_ready()
            result, is_degraded = executor.run(
                exact,
                lock=lock,
                degraded_fn=degraded if live is not None else None,
            )
            return result, is_degraded

        def _cache_key(self, kind, origin, destination, t, t_end=None,
                       extra=()):
            """Key for the answer cache, or None when caching is off.

            Requires a ready service (the epoch fingerprints the built
            index), so callers probe readiness first — exactly what a
            cache-less request would do inside ``_query``.
            """
            if cache is None:
                return None
            self._require_ready()
            generation = live.generation if live is not None else 0
            return cache.make_key(
                kind,
                origin,
                destination,
                t,
                epoch=service.cache_epoch(),
                generation=generation,
                t_end=t_end,
                extra=extra,
            )

        def _cache_put(self, key, body, is_degraded, t_end=None):
            """Store one computed answer.

            Degraded (circuit-broken frozen-timetable) answers are
            never cached: they are only acceptable while the breaker
            is open.  ``static_ok`` marks answers that are pure
            functions of the sealed index — the live engine's fast
            path — which invalidation sweeps may re-key across
            generations after certifying them against the new patch.
            """
            if key is None or is_degraded:
                return
            static_ok = live is None or live.last_query_fast_path
            cache.put(key, body, static_ok=static_ok, t_end=t_end)

        def _cache_invalidate(self):
            """Taint-driven sweep after a live mutation (caller holds
            the service lock); see PlannerService.revalidate_cache."""
            service.revalidate_cache()

        def _plan_body(
            self, request: QueryRequest, t: int, t_end: Optional[int]
        ) -> dict:
            """Answer one point-to-point query through the unified
            :meth:`~repro.planner.RoutePlanner.plan` entry point.

            ``t``/``t_end`` are the endpoint's raw parameters, kept as
            the cache key's time fields (the taint certifier reads
            them back as the query window — for LDP the single ``t``
            is the latest arrival, which the *request* carries as
            ``t_end``).
            """
            key = self._cache_key(
                request.query_type,
                request.source,
                request.destination,
                t,
                t_end=t_end,
            )
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    return hit
            result, is_degraded = self._query(
                lambda: planner.plan(request),
                (lambda: live.frozen.plan(request))
                if live is not None
                else None,
            )
            if request.query_type == "profile":
                body = {"pairs": [list(pair) for pair in result.pairs]}
            else:
                journey = result.journey
                body = {"journey": journey.to_dict() if journey else None}
            if live is not None:
                body["degraded"] = is_degraded
            if key is not None:
                self._cache_put(key, body, is_degraded, t_end=t_end)
            return body

        def _route_get(self, path: str, params: dict):
            if path == "/healthz":
                body = {
                    "status": "ok",
                    "planner": planner.name,
                    "stations": graph.n,
                    "live": live is not None,
                    "ready": service._ready.is_set(),
                    "preprocess_seconds": planner.preprocess_seconds,
                }
                build = self._build_progress()
                if build is not None:
                    body["build"] = build
                if live is not None:
                    with lock:
                        body["now"] = live.now
                        body["generation"] = live.generation
                        body["live_generation"] = live.generation
                        body["events"] = len(live.events())
                follower = service.journal_follower
                if follower is not None:
                    journal_body = follower.snapshot()
                    journal_body["role"] = "follower"
                    journal_body["skipped"] = service.journal_skipped
                    body["journal"] = journal_body
                elif service.journal is not None:
                    journal_body = service.journal.snapshot()
                    journal_body["role"] = "writer"
                    body["journal"] = journal_body
                if scoreboard is not None:
                    body["worker"] = service.worker_id
                    body["workers"] = scoreboard.workers()
                return body
            if path == "/healthz/live":
                return {"status": "alive"}
            if path == "/healthz/ready":
                self._require_ready()
                if config.enabled and executor.admission.shedding:
                    raise ServiceNotReady(
                        "shedding load (admission gate saturated)",
                        retry_after=config.retry_after_s,
                    )
                return {"ready": True}
            if path == "/resilience":
                body = executor.snapshot()
                if cache is not None:
                    body["cache"] = cache.snapshot()
                return body
            if path == "/metrics":
                body = {"planner": planner.name}
                metrics = getattr(planner, "metrics", None)
                with lock:
                    if metrics is not None:
                        body["query_metrics"] = metrics.snapshot()
                    if service._ready.is_set():
                        index = getattr(planner, "index", None)
                        if index is not None:
                            body["index"] = {
                                "num_labels": index.num_labels,
                                "unfold_fallbacks": index.unfold_fallbacks,
                                "store_bytes": index.store_bytes(),
                            }
                body["resilience"] = executor.snapshot()
                if live is not None:
                    body["live"] = {
                        "generation": live.generation,
                        "now": live.now,
                        "journal_seq": service.journal_seq(),
                    }
                if cache is not None:
                    body["cache"] = cache.snapshot()
                if scoreboard is not None:
                    # Fold this worker's very latest counters in before
                    # aggregating, then sum live rows + retired totals
                    # from shared memory — the cluster-wide view any
                    # single worker can serve.
                    service.publish_counters()
                    body["cluster"] = {
                        "worker": service.worker_id,
                        "workers": scoreboard.workers(),
                        "totals": scoreboard.totals(),
                    }
                return body
            if path == "/stations":
                return {
                    "stations": [
                        {"id": s, "name": graph.station_name(s)}
                        for s in range(graph.n)
                    ]
                }
            if path in ("/eap", "/ldp", "/sdp", "/profile"):
                kind = path[1:]
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                windowed = kind in ("sdp", "profile")
                t_end = _int_param(params, "t_end") if windowed else None
                # LDP's single time parameter is the latest *arrival*,
                # which QueryRequest models as the window end.
                request = QueryRequest(
                    kind,
                    u,
                    v,
                    t=None if kind == "ldp" else t,
                    t_end=t if kind == "ldp" else t_end,
                )
                return self._plan_body(request, t, t_end)
            if path == "/live/events":
                self._require_live()
                with lock:
                    events = live.events()
                return {
                    "events": [
                        {"id": eid, "event": event.to_dict()}
                        for eid, event in events
                    ]
                }
            if path == "/live/stats":
                self._require_live()
                with lock:
                    body = live.stats.snapshot()
                    body["generation"] = live.generation
                    body["now"] = live.now
                    body["feed_skipped"] = live.feed_skipped
                return body
            return None

        def _route_post(
            self, path: str, body: dict, versioned: bool = False
        ):
            if path.startswith("/fed/"):
                fed = service.fed
                if fed is None:
                    return None
                self._require_ready()
                with lock:
                    return fed.handle(path[len("/fed"):], body)
            if path == "/batch":
                if not versioned:
                    return None  # batch is /v1-only
                return self._batch(body)
            if path == "/live/events":
                self._require_live()
                self._require_ready()
                self._require_writer(path)
                event = event_from_dict(body)
                with lock:
                    event_id = live.apply_event(event)
                    generation = live.generation
                    self._cache_invalidate()
                    seq = self._journal_append(
                        {
                            "op": "apply_event",
                            "id": event_id,
                            "event": event.to_dict(),
                        }
                    )
                result = {"id": event_id, "generation": generation}
                if seq is not None:
                    result["seq"] = seq
                return result
            if path == "/live/advance":
                self._require_live()
                self._require_ready()
                self._require_writer(path)
                now = _int_field(body, "now")
                with lock:
                    current = live.now
                    if now < current:
                        raise RequestValidationError(
                            f"'now' must not move backwards: {now} < "
                            f"current live clock {current}",
                            field="now",
                            hint="the live clock is monotonic; POST a "
                            "value >= the current clock (see GET "
                            "/live/stats)",
                        )
                    live.advance_to(now)
                    remaining = len(live.events())
                    self._cache_invalidate()
                    seq = self._journal_append({"op": "advance", "now": now})
                result = {"now": now, "events": remaining}
                if seq is not None:
                    result["seq"] = seq
                return result
            if path == "/live/clear":
                self._require_live()
                self._require_ready()
                self._require_writer(path)
                with lock:
                    if "id" in body:
                        event_id = _int_field(body, "id")
                        live.clear_event(event_id)
                        cleared = 1
                        record = {"op": "clear", "id": event_id}
                    else:
                        cleared = live.clear_all()
                        record = {"op": "clear_all"}
                    self._cache_invalidate()
                    seq = self._journal_append(record)
                result = {"cleared": cleared}
                if seq is not None:
                    result["seq"] = seq
                return result
            return None

        def _batch(self, body: dict):
            """``POST /v1/batch`` — batched accessibility queries."""
            index = getattr(planner, "index", None)
            if index is None:
                raise ValueError(
                    f"{planner.name} does not expose a TTL index; "
                    "batch queries need one"
                )
            key = None
            t_raw = body.get("t")
            if (
                cache is not None
                and isinstance(t_raw, int)
                and not isinstance(t_raw, bool)
            ):
                # The canonical body is the key; origin/destination are
                # sentinels (a batch spans many pairs, so invalidation
                # cannot certify it per-pair — static_ok=False below
                # makes any generation bump evict it).
                key = self._cache_key(
                    "batch",
                    -1,
                    -1,
                    t_raw,
                    extra=(json.dumps(body, sort_keys=True),),
                )
                hit = cache.get(key)
                if hit is not None:
                    return hit
            kind = body.get("kind")
            if kind not in BATCH_KINDS:
                raise RequestValidationError(
                    "body field 'kind' must be one of 'one_to_many', "
                    f"'matrix', 'isochrone', got {kind!r}",
                    field="kind",
                    hint="see docs/api.md for the /v1/batch request "
                    "shapes",
                )
            query = self._batch_query(kind, body)
            answer, is_degraded = self._query(
                lambda: batch_plan(index, [query])[0], None
            )
            result = _batch_result_body(query, answer)
            if live is not None:
                result["degraded"] = is_degraded
            if key is not None and not (live is not None and is_degraded):
                cache.put(key, result, static_ok=False)
            return result

        def _batch_query(self, kind: str, body: dict) -> BatchQuery:
            """Parse one ``/v1/batch`` body into a
            :class:`~repro.query.BatchQuery`, enforcing the pair cap."""
            t = _int_field(body, "t")
            cap = config.max_batch_pairs
            cap_hint = (
                f"this server caps batch workloads at {cap} "
                "source-target pairs (ResilienceConfig.max_batch_pairs); "
                "split the request"
            )
            if kind == "one_to_many":
                source = _int_field(body, "source")
                targets = tuple(_int_list_field(body, "targets"))
                if len(targets) > cap:
                    raise RequestValidationError(
                        f"{len(targets)} targets exceed the batch cap "
                        f"of {cap}",
                        field="targets",
                        hint=cap_hint,
                    )
                return BatchQuery(
                    kind=kind, sources=(source,), targets=targets, t=t
                )
            if kind == "matrix":
                sources = tuple(_int_list_field(body, "sources"))
                targets = tuple(_int_list_field(body, "targets"))
                if len(sources) * len(targets) > cap:
                    raise RequestValidationError(
                        f"{len(sources)}x{len(targets)} matrix exceeds "
                        f"the batch cap of {cap} pairs",
                        field="sources",
                        hint=cap_hint,
                    )
                return BatchQuery(
                    kind=kind, sources=sources, targets=targets, t=t
                )
            # isochrone
            source = _int_field(body, "source")
            budget = _int_field(body, "budget")
            if graph.n > cap:
                raise RequestValidationError(
                    f"an isochrone sweeps all {graph.n} stations, "
                    f"exceeding the batch cap of {cap}",
                    field="kind",
                    hint=cap_hint,
                )
            return BatchQuery(
                kind=kind, sources=(source,), t=t, budget=budget
            )

        def _require_live(self) -> None:
            if live is None:
                raise ValueError(
                    f"{planner.name} is not a live engine; start the "
                    "service with a LiveOverlayEngine to use /live/*"
                )

        def _require_writer(self, path: str) -> None:
            """Reject direct mutations on journal followers (HTTP 409).

            Under prefork serving each worker only *follows* the
            supervisor's journal; a mutation applied to one worker
            would silently diverge the fleet.
            """
            coordinator = service.coordinator
            if coordinator is not None:
                raise ConflictError(
                    "live mutations are coordinated by the supervisor "
                    "under prefork serving; this worker only follows "
                    "the journal",
                    hint=f"POST to {coordinator}{path} (the journalled "
                    "path, fanned out to every worker)",
                )

        def _journal_append(self, record: dict) -> Optional[int]:
            """Append a mutation record after it applied locally.

            Returns the assigned journal ``seq``, or ``None`` when this
            service has no journal (single-process mode).  Called under
            the planner lock so journal order matches apply order.
            """
            if service.journal is None:
                return None
            return service.journal.append(record)

        def _send(
            self,
            status: int,
            body: dict,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            try:
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                if headers:
                    for key, value in headers.items():
                        self.send_header(key, value)
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

    return Handler


def _retry_after(seconds: float) -> str:
    """Retry-After wants whole seconds; round up, floor at 1."""
    return str(max(1, int(seconds + 0.999)))


def _split_api_version(path: str):
    """Strip the ``/v1`` prefix; returns ``(versioned, subpath)``."""
    if path == "/v1":
        return True, "/"
    if path.startswith("/v1/"):
        return True, path[3:]
    return False, path


def _error_body(error) -> dict:
    """The one error shape every response uses.

    ``error`` is an exception or a plain message; ``field`` and
    ``hint`` come from the exception when it carries them
    (``RequestValidationError.field``, ``ReproError.hint``) and are
    ``null`` otherwise — clients can always read all three keys.
    """
    return {
        "error": str(error),
        "field": getattr(error, "field", None),
        "hint": getattr(error, "hint", None),
    }


def _int_list_field(body: dict, name: str) -> list:
    """Parse one required list-of-station-ids JSON body field."""
    if name not in body:
        raise RequestValidationError(
            f"missing required body field: {name!r}", field=name
        )
    value = body[name]
    if not isinstance(value, list):
        raise RequestValidationError(
            f"body field {name!r} must be a list of station ids, "
            f"got {value!r}",
            field=name,
        )
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise RequestValidationError(
                f"body field {name!r} must contain only integers, "
                f"got {item!r}",
                field=name,
            )
    return value


def _batch_result_body(query: BatchQuery, answer) -> dict:
    """Shape one :func:`~repro.core.batch.batch_plan` answer into the
    historical ``/v1/batch`` response body for its kind."""
    if query.kind == "one_to_many":
        return {
            "kind": query.kind,
            "source": query.sources[0],
            "t": query.t,
            "arrivals": answer,
        }
    if query.kind == "matrix":
        matrix: Dict[int, Dict[int, Optional[int]]] = {}
        for (source, target), arr in answer.items():
            matrix.setdefault(source, {})[target] = arr
        return {"kind": query.kind, "t": query.t, "matrix": matrix}
    return {
        "kind": query.kind,
        "source": query.sources[0],
        "t": query.t,
        "budget": query.budget,
        "stations": answer,
    }


class _SharedSocketServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer over an inherited listening socket.

    The prefork supervisor's listener is non-blocking (every worker
    polls it; a blocking ``accept()`` would make lost wake-ups hang a
    worker), and on some platforms accepted connections inherit that —
    so ``get_request`` pins each accepted connection back to blocking
    before the handler reads from it.
    """

    def get_request(self):
        request, client_address = self.socket.accept()
        request.setblocking(True)
        return request, client_address


def _adopt_socket(
    handler, sock: socket.socket
) -> ThreadingHTTPServer:
    """Build a server that accepts on ``sock`` instead of binding.

    ``bind_and_activate=False`` keeps the constructor from binding a
    fresh socket; the placeholder it created anyway is closed and
    replaced with the shared one.  ``server_bind``/``server_activate``
    are deliberately not called — the supervisor already bound and
    listened — so server identity fields are filled in by hand.
    """
    host, port = sock.getsockname()[:2]
    server = _SharedSocketServer(
        (host, port), handler, bind_and_activate=False
    )
    server.socket.close()
    server.socket = sock
    server.server_address = (host, port)
    server.server_name = host
    server.server_port = port
    return server
