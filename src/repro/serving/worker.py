"""The forked worker body and planner factories.

A worker is a forked child of the supervisor.  It builds its own
planner (for mmap serving that means mapping the shared index file —
a zero-copy O(header) load), adopts the supervisor's listening socket
into a :class:`~repro.service.PlannerService`, and then spends its
life publishing heartbeats + counters to the shared scoreboard.  It
never returns; the supervisor terminates it.

Factories are plain closures: workers are started with the ``fork``
start method precisely so nothing has to pickle — the graph, config,
and socket all arrive by address-space inheritance, and the index
pages arrive by ``mmap`` against the page cache.
"""

from __future__ import annotations

import signal
import socket
import threading
from typing import Callable, Optional

from repro.core.queries import TTLPlanner
from repro.core.serialize import load_index
from repro.graph.timetable import TimetableGraph
from repro.planner import RoutePlanner
from repro.resilience import FaultPlan, ResilienceConfig
from repro.serving.scoreboard import Scoreboard

PlannerFactory = Callable[[], RoutePlanner]


def mapped_planner_factory(
    graph: TimetableGraph,
    index_path: str,
    verify: bool = False,
) -> PlannerFactory:
    """A factory that memory-maps ``index_path`` when called.

    ``verify=False`` skips the per-column crc pass in the worker —
    the supervisor (or CLI) is expected to have verified the file once
    before forking, and re-verifying in every worker would fault every
    page in, defeating the lazy cold start.
    """

    def factory() -> RoutePlanner:
        index = load_index(index_path, graph, mmap=True, verify=verify)
        _warm_kernels(index)
        return TTLPlanner(graph, index=index)

    return factory


def _warm_kernels(index) -> None:
    """Materialize the numpy column views (and their derived arrays)
    once at factory time, so the first request does not pay for it.

    The views are zero-copy over the mapped columns — warming costs a
    few small allocations, not a page-in of the store.
    """
    from repro.core import kernels

    if not kernels.vectorized_available():
        return
    for store in (index.in_store, index.out_store):
        if store is not None:
            store.ndarray_columns()


def live_mapped_planner_factory(
    graph: TimetableGraph,
    index_path: str,
    verify: bool = False,
) -> PlannerFactory:
    """Like :func:`mapped_planner_factory`, but wraps the mapped index
    in a :class:`~repro.live.LiveOverlayEngine` so the worker can apply
    journalled live mutations.  The sealed index pages are still shared
    copy-on-read across the fleet; only the (small) overlay state is
    private per worker.
    """

    def factory() -> RoutePlanner:
        from repro.live import LiveOverlayEngine

        index = load_index(index_path, graph, mmap=True, verify=verify)
        _warm_kernels(index)
        return LiveOverlayEngine(graph, index=index)

    return factory


def worker_main(
    worker_id: int,
    generation: int,
    sock: socket.socket,
    planner_factory: PlannerFactory,
    scoreboard: Scoreboard,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    heartbeat_interval_s: float = 0.25,
    warm: bool = True,
    journal_path: Optional[str] = None,
    coordinator: Optional[str] = None,
) -> None:
    """Serve on the shared socket (runs in the forked child).

    With ``journal_path`` set the worker tails the supervisor's live
    journal: a follower thread applies every durable record in order
    under the service lock, and ``/healthz/ready`` reports ready only
    once the replay has caught up to the tail — a respawned worker
    never serves answers from a stale overlay.  ``coordinator`` is the
    supervisor's control URL; direct mutations on this worker then
    answer 409 pointing at it.

    Runs until SIGTERM (graceful drain: stop accepting, finish
    in-flight requests, final scoreboard publish, return so the child
    exits 0) or SIGKILL (chaos; the supervisor respawns).
    """
    # Lazy import: repro.service imports a lot; the supervisor module
    # must stay importable without it for the scoreboard unit tests.
    from repro.service import PlannerService

    planner = planner_factory()
    service = PlannerService(
        planner,
        resilience=resilience,
        fault_plan=fault_plan,
        worker_id=worker_id,
        scoreboard=scoreboard,
        coordinator=coordinator,
    )
    service.generation = generation

    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: drain.set())

    service.start(sock=sock, warm=warm)
    if journal_path is not None:
        from repro.serving.journal import JournalFollower

        poll_s = (
            resilience.journal_poll_s if resilience is not None else 0.05
        )
        service.journal_follower = JournalFollower(
            journal_path,
            service.apply_journal_record,
            poll_interval_s=poll_s,
            wait_for=service._ready,
        )
        service.journal_follower.start()
    try:
        while not drain.wait(timeout=heartbeat_interval_s):
            service.publish_counters()
    except KeyboardInterrupt:
        # Ctrl-C hits the whole foreground process group; exit quietly
        # and let the supervisor's shutdown own the terminal.
        return
    # Graceful drain: close the listener and join in-flight handler
    # threads (service.stop() blocks on them via block_on_close), stop
    # the follower, then publish one last counter snapshot so the
    # supervisor's retire() folds a complete total.
    if service.journal_follower is not None:
        service.journal_follower.stop()
    service.stop()
    service.publish_counters()
