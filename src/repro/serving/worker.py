"""The forked worker body and planner factories.

A worker is a forked child of the supervisor.  It builds its own
planner (for mmap serving that means mapping the shared index file —
a zero-copy O(header) load), adopts the supervisor's listening socket
into a :class:`~repro.service.PlannerService`, and then spends its
life publishing heartbeats + counters to the shared scoreboard.  It
never returns; the supervisor terminates it.

Factories are plain closures: workers are started with the ``fork``
start method precisely so nothing has to pickle — the graph, config,
and socket all arrive by address-space inheritance, and the index
pages arrive by ``mmap`` against the page cache.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Callable, Optional

from repro.core.queries import TTLPlanner
from repro.core.serialize import load_index
from repro.graph.timetable import TimetableGraph
from repro.planner import RoutePlanner
from repro.resilience import FaultPlan, ResilienceConfig
from repro.serving.scoreboard import Scoreboard

PlannerFactory = Callable[[], RoutePlanner]


def mapped_planner_factory(
    graph: TimetableGraph,
    index_path: str,
    verify: bool = False,
) -> PlannerFactory:
    """A factory that memory-maps ``index_path`` when called.

    ``verify=False`` skips the per-column crc pass in the worker —
    the supervisor (or CLI) is expected to have verified the file once
    before forking, and re-verifying in every worker would fault every
    page in, defeating the lazy cold start.
    """

    def factory() -> RoutePlanner:
        index = load_index(index_path, graph, mmap=True, verify=verify)
        return TTLPlanner(graph, index=index)

    return factory


def worker_main(
    worker_id: int,
    generation: int,
    sock: socket.socket,
    planner_factory: PlannerFactory,
    scoreboard: Scoreboard,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    heartbeat_interval_s: float = 0.25,
    warm: bool = True,
) -> None:
    """Serve forever on the shared socket (runs in the forked child)."""
    # Lazy import: repro.service imports a lot; the supervisor module
    # must stay importable without it for the scoreboard unit tests.
    from repro.service import PlannerService

    planner = planner_factory()
    service = PlannerService(
        planner,
        resilience=resilience,
        fault_plan=fault_plan,
        worker_id=worker_id,
        scoreboard=scoreboard,
    )
    service.generation = generation
    service.start(sock=sock, warm=warm)
    pid = os.getpid()
    try:
        while True:
            scoreboard.publish(
                worker_id,
                service.counters(),
                pid=pid,
                generation=generation,
            )
            time.sleep(heartbeat_interval_s)
    except KeyboardInterrupt:
        # Ctrl-C hits the whole foreground process group; exit quietly
        # and let the supervisor's shutdown own the terminal.
        pass
