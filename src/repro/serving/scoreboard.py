"""Shared-memory worker scoreboard.

A flat ``RawArray('d')`` with one row per worker plus one *retired*
row.  Workers publish their identity (pid, spawn generation, heartbeat
timestamp) and cumulative counters; readers — any worker answering
``/metrics`` or ``/healthz``, or the supervisor — aggregate without
locks.  Each cell is an 8-byte aligned double, so torn reads cannot
produce garbage values, only values from adjacent publishes; counters
are cumulative, so that is harmless.

The retired row is the monotonicity trick: before a dead worker's slot
is reused, the supervisor folds the worker's last published counters
into the retired totals.  ``totals()`` always returns
``sum(live rows) + retired``, so aggregated counters never move
backwards across a kill-and-respawn — the invariant the CI smoke job
asserts.

Liveness math runs on ``time.monotonic()``: heartbeats and their ages
must survive an NTP step, which under wall-clock arithmetic could mark
healthy workers dead (clock jumps forward) or report negative ages
(clock jumps backward).  ``CLOCK_MONOTONIC`` is system-wide, so
monotonic stamps compare correctly across the forked workers and the
supervisor.  A wall-clock stamp is still published, but only for
display (``last_heartbeat_unix``) — it never feeds an aliveness
decision.
"""

from __future__ import annotations

import time
from multiprocessing.sharedctypes import RawArray
from typing import Dict, List, Optional

#: Per-row identity cells (not summed).  ``heartbeat`` is a monotonic
#: stamp (liveness math); ``heartbeat_wall`` is wall time for display.
#: ``live_generation`` / ``journal_seq`` track how far the worker's
#: live overlay has converged on the supervisor's journal — state, not
#: a cumulative counter, so they live here and never feed ``totals()``.
IDENTITY_FIELDS = (
    "pid",
    "generation",
    "heartbeat",
    "heartbeat_wall",
    "live_generation",
    "journal_seq",
)

#: Per-row cumulative counters (summed by :meth:`Scoreboard.totals`).
#: Mirrors :meth:`repro.service.PlannerService.counters`.
COUNTER_FIELDS = (
    "requests",
    "queries",
    "labels_scanned",
    "sketches_generated",
    "unfold_fallbacks",
    "deadline_exceeded",
    "degraded_served",
    "shed",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_invalidations",
)

FIELDS = IDENTITY_FIELDS + COUNTER_FIELDS


class Scoreboard:
    """Lock-free cross-process counters for ``num_workers`` workers."""

    def __init__(
        self, num_workers: int, liveness_timeout_s: float = 2.0
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        self.num_workers = num_workers
        self.liveness_timeout_s = liveness_timeout_s
        self._stride = len(FIELDS)
        # Last row = retired totals of dead workers.
        self._cells = RawArray("d", (num_workers + 1) * self._stride)

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------

    def publish(
        self,
        worker_id: int,
        counters: Dict[str, int],
        pid: int = 0,
        generation: int = 0,
        now: Optional[float] = None,
        wall: Optional[float] = None,
        live_generation: int = 0,
        journal_seq: int = 0,
    ) -> None:
        """Publish one worker's identity + cumulative counters.

        ``now`` overrides the monotonic heartbeat stamp and ``wall``
        the wall-clock display stamp (fake-clock tests).
        """
        base = self._base(worker_id)
        cells = self._cells
        cells[base + 0] = float(pid)
        cells[base + 1] = float(generation)
        cells[base + 2] = time.monotonic() if now is None else now
        cells[base + 3] = time.time() if wall is None else wall
        cells[base + 4] = float(live_generation)
        cells[base + 5] = float(journal_seq)
        for i, field in enumerate(COUNTER_FIELDS):
            cells[base + len(IDENTITY_FIELDS) + i] = float(
                counters.get(field, 0)
            )

    def retire(self, worker_id: int) -> None:
        """Fold a dead worker's counters into the retired row and clear
        its slot (the supervisor calls this before respawning)."""
        base = self._base(worker_id)
        retired = self.num_workers * self._stride
        cells = self._cells
        offset = len(IDENTITY_FIELDS)
        for i in range(len(COUNTER_FIELDS)):
            cells[retired + offset + i] += cells[base + offset + i]
        for i in range(self._stride):
            cells[base + i] = 0.0

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------

    def row(self, worker_id: int, now: Optional[float] = None) -> dict:
        """One worker's published state, JSON-ready.

        ``now`` is a monotonic reference (defaults to
        ``time.monotonic()``); age math never touches the wall clock,
        so an NTP step cannot flip liveness or produce negative ages.
        """
        base = self._base(worker_id)
        cells = self._cells
        heartbeat = cells[base + 2]
        wall = cells[base + 3]
        age = (time.monotonic() if now is None else now) - heartbeat
        counters = {
            field: int(cells[base + len(IDENTITY_FIELDS) + i])
            for i, field in enumerate(COUNTER_FIELDS)
        }
        return {
            "worker": worker_id,
            "pid": int(cells[base + 0]),
            "generation": int(cells[base + 1]),
            "alive": heartbeat > 0.0 and age <= self.liveness_timeout_s,
            "heartbeat_age_s": round(age, 3) if heartbeat > 0.0 else None,
            "last_heartbeat_unix": (
                round(wall, 3) if heartbeat > 0.0 else None
            ),
            "live_generation": int(cells[base + 4]),
            "journal_seq": int(cells[base + 5]),
            "counters": counters,
        }

    def workers(self, now: Optional[float] = None) -> List[dict]:
        """Per-worker rows (``/healthz`` liveness payload)."""
        if now is None:
            now = time.monotonic()
        return [self.row(w, now=now) for w in range(self.num_workers)]

    def retired_totals(self) -> Dict[str, int]:
        """Counters accumulated by workers that have since died."""
        base = self.num_workers * self._stride + len(IDENTITY_FIELDS)
        return {
            field: int(self._cells[base + i])
            for i, field in enumerate(COUNTER_FIELDS)
        }

    def totals(self) -> Dict[str, int]:
        """Live rows + retired row — monotonic across worker deaths."""
        totals = self.retired_totals()
        for worker_id in range(self.num_workers):
            base = self._base(worker_id) + len(IDENTITY_FIELDS)
            for i, field in enumerate(COUNTER_FIELDS):
                totals[field] += int(self._cells[base + i])
        return totals

    def _base(self, worker_id: int) -> int:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker id {worker_id} outside 0..{self.num_workers - 1}"
            )
        return worker_id * self._stride
