"""Prefork multi-worker serving.

One supervisor process binds the listening socket, forks K workers
that each ``mmap`` the same TTLIDX03 index file read-only and
``accept()`` on the shared socket.  The kernel load-balances accepts;
the page cache holds one physical copy of the label columns no matter
how many workers serve them — the Delling et al. / Phan & Viennot
serving shape, where the label file is an immutable shared artifact.

* :class:`~repro.serving.scoreboard.Scoreboard` — lock-free shared
  memory where every worker publishes liveness heartbeats and its
  cumulative counters; any worker can answer aggregated ``/metrics``
  and per-worker ``/healthz`` from it.  A retired-totals row keeps the
  aggregate monotonic across worker deaths.
* :func:`~repro.serving.worker.worker_main` — the forked child body:
  build the planner, adopt the shared socket into a
  :class:`~repro.service.PlannerService`, publish forever.
* :class:`~repro.serving.supervisor.ServingSupervisor` — binds, forks,
  monitors, respawns.
* :class:`~repro.serving.cache.AnswerCache` — per-worker hot-pair
  answer cache with taint-driven invalidation (``serve --cache-size``;
  see docs/serving.md).
* :class:`~repro.serving.journal.LiveJournal` /
  :class:`~repro.serving.journal.JournalFollower` — the durable
  live-event journal the supervisor appends to and every worker tails,
  so live mutations fan out to the whole fleet and a respawned worker
  replays to the tail before reporting ready (``serve --live
  --workers K --journal FILE``; see docs/serving.md).

Wired to the CLI as ``repro-ttl serve NAME --workers K --mmap
--index FILE --cache-size N``.
"""

from repro.serving.cache import AnswerCache, CacheStats
from repro.serving.journal import (
    JournalFollower,
    LiveJournal,
    compact_records,
    scan_frames,
)
from repro.serving.scoreboard import (
    COUNTER_FIELDS,
    FIELDS,
    Scoreboard,
)
from repro.serving.supervisor import ServingSupervisor
from repro.serving.worker import (
    live_mapped_planner_factory,
    mapped_planner_factory,
    worker_main,
)

__all__ = [
    "AnswerCache",
    "CacheStats",
    "COUNTER_FIELDS",
    "FIELDS",
    "JournalFollower",
    "LiveJournal",
    "Scoreboard",
    "ServingSupervisor",
    "compact_records",
    "live_mapped_planner_factory",
    "mapped_planner_factory",
    "scan_frames",
    "worker_main",
]
