"""The prefork supervisor: bind once, fork K, watch, respawn.

The supervisor owns exactly three things:

* the **listening socket** — bound and set listening (and
  non-blocking) before any fork, so every worker inherits the same
  kernel accept queue and the kernel load-balances connections;
* the **scoreboard** — shared memory allocated before any fork;
* the **worker table** — ``fork``-context processes running
  :func:`~repro.serving.worker.worker_main`.

It deliberately does *not* serve HTTP itself: aggregated ``/metrics``
and per-worker ``/healthz`` liveness are answered by whichever worker
accepts the request, reading the shared scoreboard.  That keeps the
parent a pure process manager — if it has nothing to do it does
nothing, and a wedged handler can never take the supervisor down.

Respawn: a monitor thread polls child liveness; when a worker dies
(crash, OOM-kill, chaos drill) its last published counters are folded
into the scoreboard's retired row — keeping aggregated ``/metrics``
monotonic — and a fresh worker is forked into the same slot with a
bumped generation number.  Forking from the live parent means respawn
needs no exec, no re-parse, and no index reload beyond the O(header)
mmap in the child.

Live mode (``journal_path``): the "pure process manager" rule gets one
carve-out.  The supervisor recovers + compacts the journal, replays it
into its own **reference engine**, and serves that engine on a second
*control* port — the single coordinated endpoint for live mutations
(validate locally, append + fsync, ack).  Workers get the control URL
as ``coordinator`` and answer 409 to direct mutations; each tails the
journal back to convergence.  The data-plane socket still never
touches the parent, so a wedged query handler still cannot take the
supervisor down — only live *mutations* (rare, tiny, validated) run
here.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from typing import Dict, Optional

from repro.errors import ServiceNotReady
from repro.resilience import FaultPlan, ResilienceConfig
from repro.serving.scoreboard import Scoreboard
from repro.serving.worker import PlannerFactory, worker_main


class ServingSupervisor:
    """Run ``workers`` forked servers behind one listening socket."""

    def __init__(
        self,
        planner_factory: PlannerFactory,
        workers: int = 2,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval_s: float = 0.25,
        respawn: bool = True,
        respawn_backoff_s: float = 0.1,
        warm: bool = True,
        journal_path: Optional[str] = None,
        control_port: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        self.planner_factory = planner_factory
        self.num_workers = workers
        self.resilience = resilience
        self.fault_plan = fault_plan
        self.host = host
        self.port = port
        self.heartbeat_interval_s = heartbeat_interval_s
        self.respawn = respawn
        self.respawn_backoff_s = respawn_backoff_s
        self.warm = warm
        self.journal_path = journal_path
        self.control_port = control_port
        self.journal = None
        self.control_service = None
        self.coordinator_url: Optional[str] = None
        self.scoreboard = Scoreboard(
            workers,
            liveness_timeout_s=max(2.0, 8 * heartbeat_interval_s),
        )
        self.respawns = 0
        self._ctx = multiprocessing.get_context("fork")
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._generation = 0
        self._sock: Optional[socket.socket] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> int:
        """Bind, fork every worker, start the monitor; returns the
        bound port."""
        if self.journal_path is not None:
            self._start_journal()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        # Non-blocking so a worker that loses an accept race gets
        # EAGAIN instead of hanging (socketserver swallows the OSError
        # and re-polls).  Workers re-pin accepted connections to
        # blocking; see _SharedSocketServer.
        sock.setblocking(False)
        self._sock = sock
        self.port = sock.getsockname()[1]
        for worker_id in range(self.num_workers):
            self._spawn(worker_id)
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True
        )
        self._monitor.start()
        return self.port

    def stop(self) -> None:
        """Terminate every worker and release the socket."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=5)
        self._procs.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._stop_control_plane()

    def drain(self, grace_s: float = 5.0) -> bool:
        """Graceful shutdown: SIGTERM every worker and give each up to
        ``grace_s`` to finish its in-flight requests (the worker closes
        its listener, joins handler threads via ``block_on_close``, and
        exits 0).  Stragglers past the grace window are SIGKILLed.
        The journal is fsync'd and closed last, so every acknowledged
        mutation is durable at exit.  Returns True iff every worker
        drained cleanly (exitcode 0 within the window).
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for proc in self._procs.values():
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGTERM)
        deadline = time.monotonic() + grace_s
        clean = True
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                clean = False
                proc.kill()
                proc.join(timeout=5)
            elif proc.exitcode != 0:
                clean = False
        self._procs.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._stop_control_plane()
        return clean

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until every worker has published a heartbeat (i.e.
        its service warmed up and is accepting) — and, in live mode,
        has replayed the journal to the current tail — or raise
        :class:`~repro.errors.ServiceNotReady`."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            rows = self.scoreboard.workers()
            if all(row["pid"] > 0 for row in rows) and (
                self.journal is None
                or all(
                    row["journal_seq"] >= self.journal.seq for row in rows
                )
            ):
                return
            time.sleep(0.05)
        rows = self.scoreboard.workers()
        missing = [row["worker"] for row in rows if row["pid"] == 0]
        if missing:
            raise ServiceNotReady(
                f"workers {missing} did not become ready within "
                f"{timeout_s:.0f}s"
            )
        lagging = [
            (row["worker"], row["journal_seq"])
            for row in rows
            if self.journal is not None
            and row["journal_seq"] < self.journal.seq
        ]
        raise ServiceNotReady(
            f"workers {lagging} did not replay the journal to seq "
            f"{self.journal.seq if self.journal else 0} within "
            f"{timeout_s:.0f}s"
        )

    def converged(self) -> bool:
        """True when every live worker row has applied the journal tail
        (the soak harness polls this to measure convergence lag)."""
        if self.journal is None:
            return True
        rows = self.scoreboard.workers()
        return all(
            row["pid"] > 0 and row["journal_seq"] >= self.journal.seq
            for row in rows
        )

    # ------------------------------------------------------------------
    # Introspection / chaos hooks
    # ------------------------------------------------------------------

    def worker_pids(self) -> Dict[int, int]:
        """Live worker pids by worker id."""
        return {
            worker_id: proc.pid
            for worker_id, proc in self._procs.items()
            if proc.is_alive() and proc.pid is not None
        }

    def kill_worker(
        self, worker_id: int, sig: int = signal.SIGKILL
    ) -> int:
        """Kill one worker (chaos drills, the CI smoke job); returns
        the pid killed.  The monitor notices and respawns."""
        proc = self._procs[worker_id]
        if proc.pid is None or not proc.is_alive():
            raise ValueError(f"worker {worker_id} is not running")
        os.kill(proc.pid, sig)
        return proc.pid

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start_journal(self) -> None:
        """Recover + compact the journal, build the reference engine,
        and serve the control plane (strictly before any fork).

        Compaction is pure record bookkeeping, so the compacted file is
        on disk *first* and every process — the reference engine here
        and each worker's follower — replays the identical record
        sequence.  Same records, same order ⇒ same ``live_generation``
        in every process, which is what makes the scoreboard's
        convergence check meaningful.
        """
        from dataclasses import replace

        from repro.live import LiveOverlayEngine
        from repro.serving.journal import LiveJournal, compact_records

        journal = LiveJournal(self.journal_path)
        journal.rewrite(compact_records(journal.records))
        reference = self.planner_factory()
        if not isinstance(reference, LiveOverlayEngine):
            journal.close()
            raise ValueError(
                "journalled serving needs a live planner factory "
                f"(got {type(reference).__name__}); use "
                "live_mapped_planner_factory"
            )
        reference.preprocess()
        from repro.serving.journal import apply_record

        for record in journal.records:
            apply_record(reference, record)

        # Control-plane service: same validation, error shapes, and
        # /live endpoints as the workers — but with the journal wired
        # in, so a mutation is applied to the reference engine and
        # durably appended before the 200 goes out.  Cache off: this
        # port is the mutation path and the soak oracle; answers must
        # come straight from the engine.
        from repro.service import PlannerService

        resilience = self.resilience
        if resilience is not None and resilience.cache_size:
            resilience = replace(resilience, cache_size=0)
        self.journal = journal
        self.control_service = PlannerService(
            reference,
            resilience=resilience,
            journal=journal,
        )
        control_port = self.control_service.start(
            host=self.host, port=self.control_port, warm=True
        )
        self.control_port = control_port
        self.coordinator_url = f"http://{self.host}:{control_port}"

    def _stop_control_plane(self) -> None:
        if self.control_service is not None:
            self.control_service.stop()
            self.control_service = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    def _spawn(self, worker_id: int) -> None:
        self._generation += 1
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self._generation,
                self._sock,
                self.planner_factory,
                self.scoreboard,
            ),
            kwargs={
                "resilience": self.resilience,
                "fault_plan": self.fault_plan,
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "warm": self.warm,
                "journal_path": self.journal_path
                if self.journal is not None
                else None,
                "coordinator": self.coordinator_url,
            },
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc

    def _monitor_loop(self) -> None:
        interval = max(0.05, self.heartbeat_interval_s / 2)
        while not self._stopping.wait(interval):
            for worker_id, proc in list(self._procs.items()):
                if proc.is_alive() or self._stopping.is_set():
                    continue
                proc.join(timeout=0)
                # Preserve what the dead worker had published, then
                # hand its slot to a replacement.
                self.scoreboard.retire(worker_id)
                if self.respawn:
                    time.sleep(self.respawn_backoff_s)
                    self._spawn(worker_id)
                    self.respawns += 1
