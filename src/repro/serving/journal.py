"""Durable live-event journal: the prefork fan-out log.

Under single-process serving a live mutation (``apply_event`` /
``advance`` / ``clear``) lands in the one engine that answers every
query.  Under the prefork supervisor that stops being true: whichever
worker accepts ``POST /live/events`` patches *its* overlay, every
sibling keeps serving the undisrupted timetable, and a respawned
worker forks from a parent that never saw any event — silently
breaking the zero-stale guarantee the taint analyzer and answer cache
were built to protect.

:class:`LiveJournal` fixes the ownership: the **supervisor** is the
only writer.  Every live mutation is validated against the
supervisor's own reference engine, appended to an append-only,
``fsync``'d, CRC-framed write-ahead log, and acknowledged only once
the frame is durable.  Every worker runs a :class:`JournalFollower`
that tails the file and applies records *in order* under its service's
overlay-swap lock — so the existing taint-driven cache revalidation
runs per worker per record, and all workers converge to the same
``live_generation``.  A respawned worker replays the journal to the
current tail **before** its readiness probe reports ready, so a
SIGKILL-respawn cycle can never reintroduce pre-disruption answers.

On-disk format
--------------

::

    +--------- 8 bytes ----------+
    | magic  b"RPJRNL1\\n"       |
    +----------------------------+
    | frame: <II  len, crc32     |  per record
    |        payload (JSON)      |
    +----------------------------+ ...

Each payload is one canonical-JSON record carrying a monotonically
increasing ``seq`` plus an ``op``:

* ``{"op": "apply_event", "seq": n, "id": eid, "event": {...}}``
* ``{"op": "advance",     "seq": n, "now": t}``
* ``{"op": "clear",       "seq": n, "id": eid}``
* ``{"op": "clear_all",   "seq": n}``

The CRC frames make torn tails self-healing: a crash mid-append leaves
a partial frame that :meth:`LiveJournal.scan` detects (short read or
CRC mismatch) and recovery truncates, so replay always stops at the
last *good* frame — a reader can never act on half a record.  Event
ids are carried explicitly in the records, so replay after compaction
reassigns nothing and ``clear``-by-id keeps meaning the same event in
every process.

On clean restart the supervisor **compacts**: the recovered records
are reduced to the surviving state (active events + the clock) and the
file is atomically rewritten (tmp + fsync + ``os.replace``), so the
journal a fresh worker must replay is bounded by the number of live
events, not the lifetime mutation count.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SerializationError
from repro.live.events import event_from_dict

MAGIC = b"RPJRNL1\n"

#: Frame header: payload length, CRC32 of the payload.
_FRAME = struct.Struct("<II")

#: Journal operations understood by :func:`apply_record`.
OPS = ("apply_event", "advance", "clear", "clear_all")


def _encode_frame(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True).encode()
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(data: bytes) -> Tuple[List[dict], int]:
    """Decode ``(records, good_offset)`` from raw journal bytes.

    ``good_offset`` is the byte offset one past the last frame that
    decoded cleanly; anything beyond it (a torn tail from a crash
    mid-append, or rotted bytes) is for the caller to truncate or
    ignore.  The magic header must be intact — a journal whose first
    eight bytes are wrong is not a journal, and pretending it is an
    empty one would silently drop every disruption.
    """
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        raise SerializationError(
            "not a live-event journal (bad magic header)",
            hint="the journal file is created by the serving "
            "supervisor; point --journal at a fresh path to start one",
        )
    records: List[dict] = []
    offset = len(MAGIC)
    while True:
        header = data[offset : offset + _FRAME.size]
        if len(header) < _FRAME.size:
            break  # torn or absent header
        length, crc = _FRAME.unpack(header)
        start = offset + _FRAME.size
        payload = data[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break  # torn or corrupt frame: stop at the good prefix
        try:
            record = json.loads(payload)
        except ValueError:  # bad JSON *or* bad UTF-8: treat as torn
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = start + length
    return records, offset


class LiveJournal:
    """Append-only writer (the supervisor owns exactly one).

    Opening an existing file *recovers* it: frames are scanned, the
    torn tail (if any) is truncated away, and ``seq`` resumes from the
    last durable record.  Every :meth:`append` is flushed and
    ``fsync``'d before it returns — an acknowledged mutation survives
    a supervisor crash.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.records: List[dict] = []
        self.seq = 0
        self.truncated_bytes = 0
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                data = fh.read()
            self.records, good = scan_frames(data)
            if good < len(data):
                self.truncated_bytes = len(data) - good
                with open(self.path, "r+b") as fh:
                    fh.truncate(good)
                    fh.flush()
                    os.fsync(fh.fileno())
            if self.records:
                self.seq = int(self.records[-1].get("seq", len(self.records)))
        else:
            with open(self.path, "wb") as fh:
                fh.write(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
        self._fh = open(self.path, "ab")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, op_body: dict) -> int:
        """Durably append one record; returns its assigned ``seq``."""
        with self._lock:
            self.seq += 1
            record = dict(op_body, seq=self.seq)
            self._fh.write(_encode_frame(record))
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.records.append(record)
            return self.seq

    def rewrite(self, records: List[dict]) -> None:
        """Atomically replace the journal's contents (compaction).

        Records are renumbered ``1..n``; only safe before any follower
        has started tailing (the supervisor compacts during recovery,
        strictly before forking workers).
        """
        with self._lock:
            renumbered = [
                dict(record, seq=i + 1) for i, record in enumerate(records)
            ]
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(MAGIC)
                for record in renumbered:
                    fh.write(_encode_frame(record))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh.close()
            self._fh = open(self.path, "ab")
            self.records = renumbered
            self.seq = len(renumbered)

    def sync(self) -> None:
        """Flush + fsync (the drain path calls this before exiting)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe journal state (served by the control ``/healthz``)."""
        return {
            "path": self.path,
            "seq": self.seq,
            "records": len(self.records),
            "bytes": os.path.getsize(self.path)
            if os.path.exists(self.path)
            else 0,
            "truncated_bytes": self.truncated_bytes,
        }


def compact_records(records: List[dict]) -> List[dict]:
    """Reduce a record sequence to the state it leaves behind.

    Pure event bookkeeping — no engine required: ``apply_event``
    registers, ``clear``/``clear_all`` unregister, ``advance`` moves
    the clock and drops events whose ``expires_at`` has passed (the
    same deletion rule :meth:`LiveOverlayEngine.advance_to` applies).
    The result reconstructs the surviving events (original ids kept)
    followed by one trailing ``advance`` that restores the clock.
    Malformed records are skipped — recovery must not die on one bad
    entry the CRC happened to pass.
    """
    events: Dict[int, dict] = {}
    now = 0
    for record in records:
        op = record.get("op")
        try:
            if op == "apply_event":
                event = record["event"]
                event_from_dict(event)  # validate the payload shape
                events[int(record["id"])] = event
            elif op == "clear":
                events.pop(int(record["id"]), None)
            elif op == "clear_all":
                events.clear()
            elif op == "advance":
                now = max(now, int(record["now"]))
                events = {
                    eid: event
                    for eid, event in events.items()
                    if event_from_dict(event).expires_at > now
                }
        except Exception:
            continue
    compacted: List[dict] = [
        {"op": "apply_event", "id": eid, "event": events[eid]}
        for eid in sorted(events)
    ]
    if now > 0:
        compacted.append({"op": "advance", "now": now})
    return compacted


def apply_record(engine, record: dict) -> None:
    """Apply one journal record to a live engine (no lock, no cache).

    The service-level wrapper
    (:meth:`repro.service.PlannerService.apply_journal_record`) adds
    the overlay-swap lock and the taint-driven cache sweep; this bare
    form is what supervisor recovery uses before any traffic exists.
    """
    op = record.get("op")
    if op == "apply_event":
        engine.apply_event(
            event_from_dict(record["event"]), event_id=int(record["id"])
        )
    elif op == "advance":
        engine.advance_to(int(record["now"]))
    elif op == "clear":
        engine.clear_event(int(record["id"]))
    elif op == "clear_all":
        engine.clear_all()
    else:
        raise SerializationError(f"unknown journal op: {op!r}")


class JournalFollower:
    """Worker-side tail: replay to the tail, then keep following.

    The follower thread waits for ``wait_for`` (the service's warm-up
    event — records must not race index construction), replays every
    durable frame through ``apply`` in order, and only then sets
    :attr:`caught_up` — the event the worker's readiness probe gates
    on.  After catch-up it keeps polling for new frames every
    ``poll_interval_s``.

    A frame that does not decode (short read mid-append, or a torn
    tail from a dead writer) parks the follower at the last good
    offset: it retries on the next poll, so an in-flight append is
    picked up the moment its bytes are complete, while a permanently
    corrupt tail simply never advances past the good prefix — exactly
    the replay-from-last-good-frame semantics recovery has.
    """

    def __init__(
        self,
        path: str,
        apply: Callable[[dict], None],
        poll_interval_s: float = 0.05,
        wait_for: Optional[threading.Event] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.apply = apply
        self.poll_interval_s = poll_interval_s
        self.wait_for = wait_for
        self.applied_seq = 0
        self.applied_records = 0
        self.caught_up = threading.Event()
        self._stop = threading.Event()
        self._offset = len(MAGIC)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-journal-follower"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # ------------------------------------------------------------------

    def _run(self) -> None:
        if self.wait_for is not None:
            while not self._stop.is_set():
                if self.wait_for.wait(timeout=0.05):
                    break
        while not self._stop.is_set():
            self._drain_available()
            if not self.caught_up.is_set():
                self.caught_up.set()
            self._stop.wait(self.poll_interval_s)

    def _drain_available(self) -> None:
        """Apply every complete, CRC-clean frame past the offset."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except OSError:
            return
        offset = 0
        while not self._stop.is_set():
            header = data[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                break
            length, crc = _FRAME.unpack(header)
            start = offset + _FRAME.size
            payload = data[start : start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # incomplete or torn: retry from here next poll
            try:
                record = json.loads(payload)
            except ValueError:  # bad JSON or bad UTF-8: torn frame
                break
            offset = start + length
            self._offset += _FRAME.size + length
            if isinstance(record, dict):
                self.apply(record)
                self.applied_seq = int(record.get("seq", self.applied_seq))
                self.applied_records += 1

    def snapshot(self) -> dict:
        """JSON-safe follower state (served inside ``/healthz``)."""
        return {
            "applied_seq": self.applied_seq,
            "applied_records": self.applied_records,
            "caught_up": self.caught_up.is_set(),
        }


__all__ = [
    "MAGIC",
    "OPS",
    "LiveJournal",
    "JournalFollower",
    "scan_frames",
    "compact_records",
    "apply_record",
]
