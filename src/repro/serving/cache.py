"""The hot-pair answer cache with taint-driven invalidation.

Real journey-planning traffic is Zipfian: a small set of
``(origin, destination, departure)`` tuples dominates, yet every
``/v1`` request re-runs the full sketch-merge/unfold pipeline even
when nothing changed.  :class:`AnswerCache` stores the serialized
response payloads the service would otherwise recompute, behind a
bounded LRU, one cache per worker process (no cross-process
coordination — the prefork scoreboard aggregates the counters).

Keying
------

A :class:`CacheKey` is
``(query_type, origin, destination, departure_bucket, timetable_epoch,
live_generation, params)``:

* ``departure_bucket`` (``t // bucket_s``) groups a pair's traffic by
  time-of-day slice — the granularity hot-pair statistics and
  invalidation sweeps reason at;
* ``params`` carries the *exact* query parameters (``t``, ``t_end``,
  canonical batch body).  Two requests only share an entry when they
  are byte-for-byte the same question, so a hit is always the answer
  the pipeline would have produced — the metamorphic suite in
  ``tests/test_cache.py`` asserts byte-identical bodies;
* ``timetable_epoch`` fingerprints the sealed index, so a worker that
  is handed a different index can never resurrect answers computed on
  the old one;
* ``live_generation`` is the live engine's patch generation at store
  time.  A generation bump is the **conservative fallback**: any entry
  the invalidation sweep cannot positively certify simply stops being
  addressable and is dropped.

Taint-driven invalidation
-------------------------

On every live mutation (``apply_event`` / ``clear_event`` / clock
advance) the service calls :meth:`AnswerCache.revalidate` under the
planner lock with a *certify* callback —
:meth:`repro.live.engine.LiveOverlayEngine.static_answer_valid`, which
runs the TaintAnalyzer (and the added-connection improvement bound)
over the freshly compiled patch-set.  Entries whose canonical label
segments are provably untouched (Definition 7 / Lemma 4: a clean
verdict means the unfolded path exists verbatim in the live schedule,
and no added connection can beat it) are re-keyed to the new
generation and survive; everything else — tainted pairs, fallback
answers, batch payloads, punted taint resolutions — is evicted and
counted in ``invalidations``.  The cache therefore composes with the
live overlay without ever serving a stale journey: a kept entry is a
*proof-carrying* answer, not a TTL guess.

Only answers that are pure functions of the sealed index are eligible
for re-keying (``static_ok=True`` — the engine's fast path).  Answers
computed on the overlay (Dijkstra fallback) are correct only for the
generation that produced them and always die with it.  Degraded
(circuit-broken) answers are never stored at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, NamedTuple, Optional, Tuple


class CacheKey(NamedTuple):
    """Identity of one cached answer (see module docstring)."""

    query_type: str
    origin: int
    destination: int
    departure_bucket: int
    timetable_epoch: str
    live_generation: int
    #: Exact query parameters: ``(t,)``, ``(t, t_end)``, or a
    #: canonical-JSON batch body.  Hits require full equality.
    params: Tuple


class CacheEntry(NamedTuple):
    """One stored answer plus what revalidation needs to certify it."""

    payload: dict
    #: True when the payload is the sealed index's own (fast-path)
    #: answer — a pure function of the index, so it may be re-keyed to
    #: a new generation once certified against the new patch-set.
    static_ok: bool
    query_type: str
    origin: int
    destination: int
    t: int
    t_end: Optional[int]


class CacheStats:
    """Monotonic cache counters (fed to the prefork scoreboard)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        """Share of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AnswerCache:
    """Bounded per-worker LRU over serialized ``/v1`` answers."""

    def __init__(self, capacity: int, bucket_s: int = 900) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        if bucket_s < 1:
            raise ValueError(f"bucket seconds must be positive: {bucket_s}")
        self.capacity = capacity
        self.bucket_s = bucket_s
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    def make_key(
        self,
        query_type: str,
        origin: int,
        destination: int,
        t: int,
        epoch: str,
        generation: int,
        t_end: Optional[int] = None,
        extra: Tuple = (),
    ) -> CacheKey:
        """Build the key for one query (see the module docstring)."""
        params: Tuple = (t,) if t_end is None else (t, t_end)
        return CacheKey(
            query_type=query_type,
            origin=origin,
            destination=destination,
            departure_bucket=t // self.bucket_s,
            timetable_epoch=epoch,
            live_generation=generation,
            params=params + extra,
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[dict]:
        """The cached payload (a fresh top-level copy) or ``None``.

        The copy matters: the ``/v1`` dispatcher pops ``degraded`` out
        of the body it envelopes, which must not corrode the stored
        entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return dict(entry.payload)

    def put(
        self,
        key: CacheKey,
        payload: dict,
        static_ok: bool,
        t_end: Optional[int] = None,
    ) -> None:
        """Store one answer, evicting LRU victims past capacity."""
        entry = CacheEntry(
            payload=dict(payload),
            static_ok=static_ok,
            query_type=key.query_type,
            origin=key.origin,
            destination=key.destination,
            t=key.params[0],
            t_end=t_end,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def revalidate(
        self,
        generation: int,
        certify: Optional[Callable[[CacheEntry], bool]] = None,
    ) -> int:
        """Sweep the cache after a live-generation bump.

        Entries already at ``generation`` are kept as-is.  Older
        entries are re-keyed to ``generation`` when they are
        ``static_ok`` *and* ``certify(entry)`` proves the static answer
        exact under the new patch-set; every other entry is evicted.
        With no ``certify`` (or for non-certifiable entries) the
        generation key mismatch is the conservative fallback — the
        entry is dropped.  Returns the number of invalidated entries.
        """
        with self._lock:
            retained: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
            invalidated = 0
            for key, entry in self._entries.items():
                if key.live_generation == generation:
                    retained[key] = entry
                    continue
                if (
                    entry.static_ok
                    and certify is not None
                    and certify(entry)
                ):
                    retained[key._replace(live_generation=generation)] = entry
                else:
                    invalidated += 1
            self._entries = retained
            self.stats.invalidations += invalidated
            return invalidated

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict:
        """Flat counter dict matching the scoreboard field names."""
        return {
            "cache_hits": self.stats.hits,
            "cache_misses": self.stats.misses,
            "cache_evictions": self.stats.evictions,
            "cache_invalidations": self.stats.invalidations,
        }

    def snapshot(self) -> dict:
        """JSON-safe state for ``/metrics`` and ``/resilience``."""
        return {
            "capacity": self.capacity,
            "bucket_s": self.bucket_s,
            "size": len(self._entries),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "invalidations": self.stats.invalidations,
            "hit_rate": round(self.stats.hit_rate, 4),
        }
