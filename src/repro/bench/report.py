"""One-shot reproduction report.

Runs every paper experiment through a shared
:class:`~repro.bench.harness.PlannerCache` and renders a single
markdown document with the measured tables plus automatic
paper-shape verdicts (the same qualitative checks the benchmark suite
asserts).  Exposed as ``repro-ttl report``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.bench import experiments as E
from repro.bench.harness import PlannerCache


def _check_fig3(result) -> List[str]:
    verdicts = []
    ttl = result.by_dataset("TTL (us)")
    csa = result.by_dataset("CSA (us)")
    cht = result.by_dataset("CHT (us)")
    wins_csa = sum(1 for d in ttl if ttl[d] < csa[d])
    wins_cht = sum(1 for d in ttl if ttl[d] < cht[d])
    verdicts.append(
        f"TTL beats CSA on {wins_csa}/{len(ttl)} and CHT on "
        f"{wins_cht}/{len(ttl)} datasets (paper: all)."
    )
    ratios = [csa[d] / ttl[d] for d in ttl]
    verdicts.append(
        f"TTL:CSA speedup ranges {min(ratios):.0f}x - {max(ratios):.0f}x "
        f"at this scale (paper: ~3 orders at 100-1000x larger inputs)."
    )
    return verdicts


def _check_fig4(result) -> List[str]:
    ttl = result.by_dataset("TTL (B)")
    cttl = result.by_dataset("C-TTL (B)")
    shrunk = sum(1 for d in ttl if cttl[d] < ttl[d])
    return [
        f"compression shrinks TTL on {shrunk}/{len(ttl)} datasets "
        f"(paper: all)."
    ]


def _check_fig5(result) -> List[str]:
    ordered = all(
        row[1] < row[2] < row[3] <= row[4] * 1.0001 for row in result.rows
    )
    return [
        "preprocessing ordering CSA << CHT < TTL ~= C-TTL holds on "
        + ("every dataset." if ordered else "most datasets (check rows).")
    ]


def _check_table4(result) -> List[str]:
    d3 = result.column("both d3 (%)")
    return [
        f"combined compression removes {min(d3):.0f}% - {max(d3):.0f}% "
        f"of labels (paper: up to 61.4%)."
    ]


_SECTIONS: List[Tuple[str, Callable, Optional[Callable]]] = [
    ("Table 3 — dataset characteristics", E.table3_datasets, None),
    ("Figure 3 — SDP query time", E.figure3_sdp, _check_fig3),
    ("Figure 6 — EAP query time", E.figure6_eap, None),
    ("Figure 7 — LDP query time", E.figure7_ldp, None),
    ("Figure 4 — index size", E.figure4_space, _check_fig4),
    ("Figure 5 — preprocessing time", E.figure5_preprocessing, _check_fig5),
    ("Table 4 — compression", E.table4_compression, _check_table4),
    ("Figure 8 — construction (small datasets)", E.figure8_construction, None),
    ("Figure 9 — node order vs index size", E.figure9_order_size, None),
    ("Figure 10 — node order vs build time", E.figure10_order_time, None),
]


def generate_report(cache: Optional[PlannerCache] = None) -> str:
    """Run all experiments and render the markdown report."""
    cache = cache or PlannerCache()
    config = cache.config
    lines = [
        "# TTL reproduction report",
        "",
        f"Datasets: {', '.join(config.datasets)} (scale {config.scale}); "
        f"{config.num_queries} queries per measurement.",
        "",
    ]
    for title, experiment, checker in _SECTIONS:
        result = experiment(cache)
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(str(result))
        lines.append("```")
        if checker is not None:
            for verdict in checker(result):
                lines.append(f"* {verdict}")
        lines.append("")
    return "\n".join(lines)
