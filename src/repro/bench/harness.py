"""Shared benchmark machinery.

Environment knobs (all optional):

* ``REPRO_SCALE``     — dataset scale factor (default 1.0).
* ``REPRO_DATASETS``  — comma-separated dataset subset.
* ``REPRO_QUERIES``   — queries per measurement (default 200).

:class:`PlannerCache` builds each (dataset, method) planner at most
once per process; the figure experiments and the pytest benchmarks all
share it so preprocessing is not re-paid per figure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import CHTPlanner, CSAPlanner
from repro.core import CompressedTTLPlanner, TTLPlanner
from repro.datasets import QueryWorkload, load_dataset
from repro.datasets.registry import paper_dataset_names
from repro.datasets.queries import Query
from repro.graph.timetable import TimetableGraph
from repro.planner import RoutePlanner
from repro.query import QUERY_TYPES, QueryRequest


@dataclass
class BenchConfig:
    """Resolved benchmark configuration."""

    scale: float = 1.0
    datasets: List[str] = field(default_factory=paper_dataset_names)
    num_queries: int = 200
    seed: int = 2015

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Read the ``REPRO_*`` environment knobs."""
        config = cls()
        scale = os.environ.get("REPRO_SCALE")
        if scale:
            config.scale = float(scale)
        subset = os.environ.get("REPRO_DATASETS")
        if subset:
            config.datasets = [
                name.strip() for name in subset.split(",") if name.strip()
            ]
        queries = os.environ.get("REPRO_QUERIES")
        if queries:
            config.num_queries = int(queries)
        return config


#: Planner factories by method name (the paper's method line-up).
METHOD_FACTORIES: Dict[str, Callable[[TimetableGraph], RoutePlanner]] = {
    "TTL": lambda g: TTLPlanner(g),
    "TTL-concise": lambda g: TTLPlanner(g, concise=True),
    "C-TTL": lambda g: CompressedTTLPlanner(g),
    "C-TTL-concise": lambda g: CompressedTTLPlanner(g, concise=True),
    "CSA": lambda g: CSAPlanner(g),
    "CHT": lambda g: CHTPlanner(g),
}


class PlannerCache:
    """Process-wide cache of preprocessed planners and query sets."""

    def __init__(self, config: Optional[BenchConfig] = None) -> None:
        self.config = config or BenchConfig.from_env()
        self._planners: Dict[Tuple[str, str], RoutePlanner] = {}
        self._queries: Dict[str, List[Query]] = {}
        # C-TTL variants share one compressed index per dataset; TTL
        # variants share one plain index.
        self._shared: Dict[Tuple[str, str], object] = {}

    def graph(self, dataset: str) -> TimetableGraph:
        return load_dataset(dataset, scale=self.config.scale)

    def planner(self, dataset: str, method: str) -> RoutePlanner:
        """A preprocessed planner for ``(dataset, method)``."""
        key = (dataset, method)
        planner = self._planners.get(key)
        if planner is not None:
            return planner
        graph = self.graph(dataset)
        planner = self._make(graph, dataset, method)
        planner.preprocess()
        self._planners[key] = planner
        return planner

    def _make(
        self, graph: TimetableGraph, dataset: str, method: str
    ) -> RoutePlanner:
        if method in ("TTL", "TTL-concise"):
            index = self._shared.get((dataset, "ttl-index"))
            if index is None:
                base = TTLPlanner(graph)
                base.preprocess()
                index = base.index
                self._shared[(dataset, "ttl-index")] = index
            return TTLPlanner(
                graph, index=index, concise=(method == "TTL-concise")
            )
        if method in ("C-TTL", "C-TTL-concise"):
            cindex = self._shared.get((dataset, "cttl-index"))
            if cindex is None:
                from repro.core import build_index, compress_index

                index = self._shared.get((dataset, "ttl-index"))
                if index is None:
                    index = build_index(graph)
                    self._shared[(dataset, "ttl-index")] = index
                cindex, _ = compress_index(index, mode="both")
                self._shared[(dataset, "cttl-index")] = cindex
            return CompressedTTLPlanner(
                graph, cindex=cindex, concise=(method == "C-TTL-concise")
            )
        factory = METHOD_FACTORIES.get(method)
        if factory is None:
            raise KeyError(f"unknown method: {method}")
        return factory(graph)

    def queries(self, dataset: str) -> List[Query]:
        """The dataset's deterministic query set."""
        cached = self._queries.get(dataset)
        if cached is None:
            workload = QueryWorkload(self.graph(dataset), seed=self.config.seed)
            cached = self._queries[dataset] = workload.generate(
                self.config.num_queries
            )
        return cached


#: The process-wide default cache used by experiments and benchmarks.
DEFAULT_CACHE = PlannerCache()


def query_request(q: Query, kind: str) -> QueryRequest:
    """Map one workload :class:`Query` onto a :class:`QueryRequest`
    (LDP's single time is the latest arrival, i.e. the window end)."""
    if kind not in QUERY_TYPES:
        raise ValueError(f"unknown query kind: {kind}")
    return QueryRequest(
        kind,
        q.source,
        q.destination,
        t=None if kind == "ldp" else q.t_start,
        t_end=None if kind == "eap" else q.t_end,
    )


def run_queries(
    planner: RoutePlanner, queries: Sequence[Query], kind: str
) -> int:
    """Run a query batch; returns how many were answerable."""
    if kind not in QUERY_TYPES:
        raise ValueError(f"unknown query kind: {kind}")
    answered = 0
    for q in queries:
        if planner.plan(query_request(q, kind)).feasible:
            answered += 1
    return answered


def time_queries(
    planner: RoutePlanner, queries: Sequence[Query], kind: str
) -> float:
    """Average seconds per query for one batch."""
    start = time.perf_counter()
    run_queries(planner, queries, kind)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, len(queries))


# ----------------------------------------------------------------------
# Text tables
# ----------------------------------------------------------------------


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table (the paper-figure row format)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
