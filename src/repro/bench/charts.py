"""Text renderings of the paper's figures.

The paper's Figures 3-10 are grouped log-scale bar charts.  This
module renders the same data as aligned ASCII charts so a terminal-only
reproduction still *looks* like the figures: one row group per
dataset, one log-scaled bar per method.

Used by the benchmark suite to write ``results/*_chart.txt`` next to
each numeric table.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

#: Width of the bar area in characters.
BAR_WIDTH = 46


def _log_bar(value: float, lo: float, hi: float) -> str:
    """A log-scaled bar for ``value`` on the [lo, hi] axis."""
    if value <= 0:
        return ""
    if hi <= lo:
        return "#"
    span = math.log10(hi) - math.log10(lo)
    frac = (math.log10(value) - math.log10(lo)) / span
    frac = min(1.0, max(0.0, frac))
    return "#" * max(1, round(BAR_WIDTH * frac))


def grouped_log_chart(
    title: str,
    group_names: Sequence[str],
    series_names: Sequence[str],
    values: Sequence[Sequence[Optional[float]]],
    unit: str = "us",
) -> str:
    """Render a grouped horizontal bar chart with a log value axis.

    Args:
        title: chart heading.
        group_names: one per group (dataset).
        series_names: one per bar within a group (method).
        values: ``values[g][s]`` — the bar value, or None to omit.
        unit: axis unit label.
    """
    flat = [
        v
        for group in values
        for v in group
        if v is not None and v > 0
    ]
    if not flat:
        return f"{title}\n(no data)"
    lo, hi = min(flat), max(flat)
    label_width = max(len(name) for name in series_names)

    lines = [title, f"(log scale, {_fmt(lo)}{unit} .. {_fmt(hi)}{unit})"]
    for g, group in enumerate(group_names):
        lines.append(f"{group}")
        for s, series in enumerate(series_names):
            value = values[g][s]
            if value is None:
                lines.append(f"  {series.ljust(label_width)} |  (n/a)")
                continue
            bar = _log_bar(value, lo, hi)
            lines.append(
                f"  {series.ljust(label_width)} |{bar} {_fmt(value)}{unit}"
            )
    return "\n".join(lines)


def chart_from_result(result, unit: str = "us") -> str:
    """Chart an :class:`~repro.bench.experiments.ExperimentResult`
    whose first column is the dataset and whose remaining columns are
    method values."""
    series_names = [header.split(" (")[0] for header in result.headers[1:]]
    group_names = [row[0] for row in result.rows]
    values: List[List[Optional[float]]] = [
        [
            (float(cell) if isinstance(cell, (int, float)) else None)
            for cell in row[1:]
        ]
        for row in result.rows
    ]
    return grouped_log_chart(
        result.name, group_names, series_names, values, unit=unit
    )


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"
