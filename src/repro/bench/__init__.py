"""Benchmark harness.

* :mod:`repro.bench.harness` — shared machinery: the planner cache,
  query-timing helpers, text-table rendering, and environment knobs.
* :mod:`repro.bench.experiments` — one function per paper table /
  figure, each returning structured rows and a rendered table.

The pytest benchmarks under ``benchmarks/`` are thin wrappers around
these functions so every experiment can also be driven from the CLI
(``repro-ttl bench ...``) or a notebook.
"""

from repro.bench.harness import (
    BenchConfig,
    PlannerCache,
    render_table,
    time_queries,
)
from repro.bench.experiments import (
    ablation_horder_samples,
    ablation_pruning,
    ablation_unfold,
    figure3_sdp,
    figure4_space,
    figure5_preprocessing,
    figure6_eap,
    figure7_ldp,
    figure8_construction,
    figure9_order_size,
    figure10_order_time,
    table3_datasets,
    table4_compression,
)

__all__ = [
    "BenchConfig",
    "PlannerCache",
    "render_table",
    "time_queries",
    "table3_datasets",
    "figure3_sdp",
    "figure4_space",
    "figure5_preprocessing",
    "table4_compression",
    "figure6_eap",
    "figure7_ldp",
    "figure8_construction",
    "figure9_order_size",
    "figure10_order_time",
    "ablation_pruning",
    "ablation_horder_samples",
    "ablation_unfold",
]
