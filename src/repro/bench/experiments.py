"""One function per paper table / figure (see DESIGN.md's index).

Every function takes a :class:`~repro.bench.harness.PlannerCache` and
returns an :class:`ExperimentResult` whose rows mirror what the paper
reports; ``str(result)`` renders the aligned text table the benchmark
suite writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines import CHTPlanner, CSAPlanner
from repro.bench.harness import (
    PlannerCache,
    render_table,
    time_queries,
)
from repro.core import (
    TTLPlanner,
    build_index,
    build_index_brute_force,
    compress_index,
)
from repro.core.order import approximation_order, hub_order, random_order


@dataclass
class ExperimentResult:
    """Rows + rendering of one experiment."""

    name: str
    headers: List[str]
    rows: List[List[object]]

    def __str__(self) -> str:
        return render_table(self.name, self.headers, self.rows)

    def column(self, header: str) -> List[object]:
        i = self.headers.index(header)
        return [row[i] for row in self.rows]

    def by_dataset(self, header: str) -> Dict[str, object]:
        i = self.headers.index(header)
        return {row[0]: row[i] for row in self.rows}


#: Methods plotted in Figures 3, 6, 7 (query-time figures).
QUERY_METHODS = [
    "TTL",
    "TTL-concise",
    "C-TTL",
    "C-TTL-concise",
    "CHT",
    "CSA",
]

#: The small datasets used where the paper restricts A-Order /
#: brute-force construction (Appendix D.2 memory / time gates).
SMALL_DATASETS = ["Austin", "Denver", "Toronto"]


# ----------------------------------------------------------------------
# Table 3 — dataset characteristics
# ----------------------------------------------------------------------


def table3_datasets(cache: PlannerCache) -> ExperimentResult:
    """Table 3: per-dataset n, m, trips, routes."""
    rows: List[List[object]] = []
    for name in cache.config.datasets:
        stats = cache.graph(name).stats()
        rows.append(
            [
                name,
                stats.num_stations,
                stats.num_connections,
                stats.num_trips,
                stats.num_routes,
            ]
        )
    return ExperimentResult(
        "Table 3: dataset characteristics",
        ["dataset", "stations", "connections", "trips", "routes"],
        rows,
    )


# ----------------------------------------------------------------------
# Figures 3 / 6 / 7 — query time per method
# ----------------------------------------------------------------------


def _query_figure(
    cache: PlannerCache, kind: str, title: str
) -> ExperimentResult:
    rows: List[List[object]] = []
    for name in cache.config.datasets:
        queries = cache.queries(name)
        row: List[object] = [name]
        for method in QUERY_METHODS:
            planner = cache.planner(name, method)
            seconds = time_queries(planner, queries, kind)
            row.append(seconds * 1e6)  # microseconds, as in the paper
        rows.append(row)
    return ExperimentResult(
        title, ["dataset"] + [f"{m} (us)" for m in QUERY_METHODS], rows
    )


def figure3_sdp(cache: PlannerCache) -> ExperimentResult:
    """Figure 3: average SDP query time."""
    return _query_figure(cache, "sdp", "Figure 3: SDP query time")


def figure6_eap(cache: PlannerCache) -> ExperimentResult:
    """Figure 6 (Appendix D.1): average EAP query time."""
    return _query_figure(cache, "eap", "Figure 6: EAP query time")


def figure7_ldp(cache: PlannerCache) -> ExperimentResult:
    """Figure 7 (Appendix D.1): average LDP query time."""
    return _query_figure(cache, "ldp", "Figure 7: LDP query time")


# ----------------------------------------------------------------------
# Figure 4 — index size
# ----------------------------------------------------------------------


def figure4_space(cache: PlannerCache) -> ExperimentResult:
    """Figure 4: index size per method (model bytes)."""
    methods = ["TTL", "C-TTL", "CHT", "CSA"]
    rows: List[List[object]] = []
    for name in cache.config.datasets:
        row: List[object] = [name]
        for method in methods:
            row.append(cache.planner(name, method).index_bytes())
        rows.append(row)
    return ExperimentResult(
        "Figure 4: index size (bytes)",
        ["dataset"] + [f"{m} (B)" for m in methods],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 5 — preprocessing time
# ----------------------------------------------------------------------


def figure5_preprocessing(cache: PlannerCache) -> ExperimentResult:
    """Figure 5: preprocessing time per method (fresh builds)."""
    rows: List[List[object]] = []
    for name in cache.config.datasets:
        graph = cache.graph(name)
        csa = CSAPlanner(graph)
        csa_s = csa.preprocess()
        cht = CHTPlanner(graph)
        cht_s = cht.preprocess()
        start = time.perf_counter()
        index = build_index(graph)
        ttl_s = time.perf_counter() - start
        start = time.perf_counter()
        compress_index(index, mode="both")
        cttl_s = ttl_s + (time.perf_counter() - start)
        rows.append([name, csa_s, cht_s, ttl_s, cttl_s])
    return ExperimentResult(
        "Figure 5: preprocessing time (s)",
        ["dataset", "CSA (s)", "CHT (s)", "TTL (s)", "C-TTL (s)"],
        rows,
    )


# ----------------------------------------------------------------------
# Table 4 — compression effectiveness
# ----------------------------------------------------------------------


def table4_compression(cache: PlannerCache) -> ExperimentResult:
    """Table 4: label-count reduction of each compression scheme."""
    rows: List[List[object]] = []
    for name in cache.config.datasets:
        # Reuse the cached plain index.
        planner = cache.planner(name, "TTL")
        assert isinstance(planner, TTLPlanner) and planner.index is not None
        index = planner.index
        reductions = []
        for mode in ("route", "pivot", "both"):
            _, stats = compress_index(index, mode=mode)
            reductions.append(100.0 * stats.reduction)
        rows.append([name, index.num_labels] + reductions)
    return ExperimentResult(
        "Table 4: compression (label reduction %)",
        ["dataset", "|L|", "route d1 (%)", "pivot d2 (%)", "both d3 (%)"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 8 — IndexBuild vs brute-force construction (Appendix D.2)
# ----------------------------------------------------------------------


def figure8_construction(
    cache: PlannerCache, datasets: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Figure 8: pruned IndexBuild vs brute-force Dijkstra."""
    rows: List[List[object]] = []
    names = list(datasets) if datasets is not None else [
        d for d in cache.config.datasets if d in SMALL_DATASETS
    ] or SMALL_DATASETS[:1]
    for name in names:
        graph = cache.graph(name)
        ranks = hub_order(graph)
        start = time.perf_counter()
        pruned = build_index(graph, order=ranks)
        pruned_s = time.perf_counter() - start
        start = time.perf_counter()
        brute = build_index_brute_force(graph, order=ranks)
        brute_s = time.perf_counter() - start
        rows.append(
            [
                name,
                pruned_s,
                brute_s,
                brute_s / max(pruned_s, 1e-9),
                pruned.num_labels,
                brute.num_labels,
            ]
        )
    return ExperimentResult(
        "Figure 8: index construction time (s)",
        [
            "dataset",
            "IndexBuild (s)",
            "brute force (s)",
            "speedup",
            "labels (pruned)",
            "labels (brute)",
        ],
        rows,
    )


# ----------------------------------------------------------------------
# Figures 9 / 10 — node orders (Appendix D.2)
# ----------------------------------------------------------------------


_ORDER_ROWS_MEMO: Dict[tuple, List[List[object]]] = {}


def _order_rows(
    cache: PlannerCache, datasets: Optional[Sequence[str]]
) -> List[List[object]]:
    names = list(datasets) if datasets is not None else [
        d for d in cache.config.datasets if d in SMALL_DATASETS
    ] or SMALL_DATASETS[:1]
    memo_key = (id(cache), tuple(names))
    memoized = _ORDER_ROWS_MEMO.get(memo_key)
    if memoized is not None:
        return memoized
    rows: List[List[object]] = []
    for name in names:
        graph = cache.graph(name)
        row: List[object] = [name]
        for order_fn in (hub_order, random_order, approximation_order):
            start = time.perf_counter()
            try:
                ranks = order_fn(graph)
            except Exception:
                row.extend([None, None])
                continue
            order_s = time.perf_counter() - start
            start = time.perf_counter()
            index = build_index(graph, order=ranks)
            build_s = time.perf_counter() - start
            row.extend([index.num_labels, order_s + build_s])
        rows.append(row)
    _ORDER_ROWS_MEMO[memo_key] = rows
    return rows


def figure9_order_size(
    cache: PlannerCache, datasets: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Figure 9: index size per node-ordering method."""
    rows = [
        [row[0], row[1], row[3], row[5]] for row in _order_rows(cache, datasets)
    ]
    return ExperimentResult(
        "Figure 9: index size by node order (labels)",
        ["dataset", "H-Order", "Rand-Order", "A-Order"],
        rows,
    )


def figure10_order_time(
    cache: PlannerCache, datasets: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Figure 10: total preprocessing time per node-ordering method."""
    rows = [
        [row[0], row[2], row[4], row[6]] for row in _order_rows(cache, datasets)
    ]
    return ExperimentResult(
        "Figure 10: total preprocessing time by node order (s)",
        ["dataset", "H-Order (s)", "Rand-Order (s)", "A-Order (s)"],
        rows,
    )


# ----------------------------------------------------------------------
# Ablations beyond the paper
# ----------------------------------------------------------------------


def ablation_pruning(
    cache: PlannerCache, datasets: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Hub-cover pruning on/off: build time and label count."""
    rows: List[List[object]] = []
    names = list(datasets) if datasets is not None else [
        d for d in cache.config.datasets if d in SMALL_DATASETS
    ] or SMALL_DATASETS[:1]
    for name in names:
        graph = cache.graph(name)
        ranks = hub_order(graph)
        start = time.perf_counter()
        with_prune = build_index(graph, order=ranks, prune_cover=True)
        with_s = time.perf_counter() - start
        start = time.perf_counter()
        without_prune = build_index(graph, order=ranks, prune_cover=False)
        without_s = time.perf_counter() - start
        rows.append(
            [
                name,
                with_prune.num_labels,
                without_prune.num_labels,
                with_s,
                without_s,
            ]
        )
    return ExperimentResult(
        "Ablation: hub-cover pruning",
        [
            "dataset",
            "labels (pruned)",
            "labels (no prune)",
            "build pruned (s)",
            "build no-prune (s)",
        ],
        rows,
    )


def ablation_horder_samples(
    cache: PlannerCache,
    dataset: str = "Austin",
    sample_counts: Sequence[int] = (1, 4, 16, 64),
) -> ExperimentResult:
    """How many sampled EAP trees does H-Order need?"""
    graph = cache.graph(dataset)
    rows: List[List[object]] = []
    for count in sample_counts:
        start = time.perf_counter()
        ranks = hub_order(graph, num_samples=count)
        order_s = time.perf_counter() - start
        index = build_index(graph, order=ranks)
        rows.append([count, index.num_labels, order_s])
    return ExperimentResult(
        f"Ablation: H-Order sample count ({dataset})",
        ["samples", "labels", "ordering time (s)"],
        rows,
    )


def ablation_unfold(
    cache: PlannerCache, dataset: str = "Berlin"
) -> ExperimentResult:
    """Full-path vs concise-path reconstruction cost (TTL)."""
    queries = cache.queries(dataset)
    rows: List[List[object]] = []
    for method in ("TTL", "TTL-concise", "C-TTL", "C-TTL-concise"):
        planner = cache.planner(dataset, method)
        seconds = time_queries(planner, queries, "sdp")
        rows.append([method, seconds * 1e6])
    return ExperimentResult(
        f"Ablation: path reconstruction cost ({dataset}, SDP)",
        ["method", "us/query"],
        rows,
    )
