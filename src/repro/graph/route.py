"""Routes and trips.

A *route* is an ordered sequence of stations served by one or more
vehicles; a *trip* is a single timetabled traversal of a route (the
paper's "vehicle" ``b``).  Route structure is what the route-based
label compression of Section 7.1 exploits: when every label between a
station pair rides trips of the same route, the labels collapse into a
single route reference plus the route's timetable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import ValidationError


class StopTime(NamedTuple):
    """Arrival and departure of a trip at one stop along its route.

    For the first stop of a trip ``arr == dep`` by convention.
    """

    arr: int
    dep: int


@dataclass(frozen=True)
class Trip:
    """A single timetabled run of a route.

    Attributes:
        trip_id: unique id of this trip (used as ``Connection.trip``).
        route_id: the route this trip serves.
        stop_times: one :class:`StopTime` per stop of the route, in
            route order.
    """

    trip_id: int
    route_id: int
    stop_times: Tuple[StopTime, ...]

    def validate(self, num_stops: int) -> None:
        """Check internal consistency against the owning route."""
        if len(self.stop_times) != num_stops:
            raise ValidationError(
                f"trip {self.trip_id}: {len(self.stop_times)} stop times "
                f"but route has {num_stops} stops"
            )
        for i, st in enumerate(self.stop_times):
            if st.dep < st.arr:
                raise ValidationError(
                    f"trip {self.trip_id}: departs stop {i} before arriving"
                )
        for i in range(len(self.stop_times) - 1):
            if self.stop_times[i + 1].arr <= self.stop_times[i].dep:
                raise ValidationError(
                    f"trip {self.trip_id}: non-increasing times between "
                    f"stops {i} and {i + 1}"
                )

    @property
    def departure(self) -> int:
        """Departure time from the first stop."""
        return self.stop_times[0].dep

    @property
    def arrival(self) -> int:
        """Arrival time at the last stop."""
        return self.stop_times[-1].arr


@dataclass
class Route:
    """An ordered stop sequence shared by one or more trips.

    Attributes:
        route_id: unique id of the route.
        stops: station ids in traversal order (at least two, no
            immediate repeats).
        trips: trips serving this route, kept sorted by departure time
            from the first stop.
        name: optional human-readable name.
    """

    route_id: int
    stops: Tuple[int, ...]
    trips: List[Trip] = field(default_factory=list)
    name: Optional[str] = None
    #: Lazily built per-stop timetable columns (see ``columns``).
    _columns: Optional[Tuple[List[List[int]], List[List[int]], List[int]]] = (
        field(default=None, repr=False, compare=False)
    )

    def validate(self) -> None:
        """Check the stop sequence and all trips."""
        if len(self.stops) < 2:
            raise ValidationError(f"route {self.route_id}: needs >= 2 stops")
        for a, b in zip(self.stops, self.stops[1:]):
            if a == b:
                raise ValidationError(
                    f"route {self.route_id}: repeated consecutive stop {a}"
                )
        for trip in self.trips:
            if trip.route_id != self.route_id:
                raise ValidationError(
                    f"trip {trip.trip_id} claims route {trip.route_id}, "
                    f"stored under route {self.route_id}"
                )
            trip.validate(len(self.stops))

    def stop_index(self, station: int) -> int:
        """Position of ``station`` in the stop sequence.

        Raises ``ValueError`` when the station is not on the route.
        Routes never visit a station twice in this model, so the index
        is unique.
        """
        return self.stops.index(station)

    def sort_trips(self) -> None:
        """Order trips by departure time from the first stop."""
        self.trips.sort(key=lambda t: t.departure)

    def timetable_between(
        self, from_station: int, to_station: int
    ) -> List[Tuple[int, int, int]]:
        """Per-trip ``(dep_at_from, arr_at_to, trip_id)`` triples.

        This is the "timetable associated with u and v" used to
        decompress route-based labels (Section 7.1).  The ``from``
        station must precede the ``to`` station on the route.
        """
        i = self.stop_index(from_station)
        j = self.stop_index(to_station)
        if i >= j:
            raise ValidationError(
                f"route {self.route_id}: {from_station} does not precede "
                f"{to_station}"
            )
        return [
            (trip.stop_times[i].dep, trip.stop_times[j].arr, trip.trip_id)
            for trip in self.trips
        ]

    def columns(self) -> Tuple[List[List[int]], List[List[int]], List[int]]:
        """Column-wise timetable: per-stop departure and arrival lists.

        Returns ``(dep_cols, arr_cols, trip_ids)`` where
        ``dep_cols[i][k]`` is trip ``k``'s departure from stop ``i``
        (trips in first-stop departure order).  This is the "timetable
        of the route" that route-based label compression reads at
        decompression time (Section 7.1); it is built once per route
        and shared.
        """
        if self._columns is None:
            self.sort_trips()
            dep_cols = [
                [trip.stop_times[i].dep for trip in self.trips]
                for i in range(len(self.stops))
            ]
            arr_cols = [
                [trip.stop_times[i].arr for trip in self.trips]
                for i in range(len(self.stops))
            ]
            trip_ids = [trip.trip_id for trip in self.trips]
            self._columns = (dep_cols, arr_cols, trip_ids)
        return self._columns

    def pair_columns(
        self, from_station: int, to_station: int
    ) -> Tuple[List[int], List[int], List[int]]:
        """``(deps_at_from, arrs_at_to, trip_ids)`` column slices."""
        i = self.stop_index(from_station)
        j = self.stop_index(to_station)
        if i >= j:
            raise ValidationError(
                f"route {self.route_id}: {from_station} does not precede "
                f"{to_station}"
            )
        dep_cols, arr_cols, trip_ids = self.columns()
        return dep_cols[i], arr_cols[j], trip_ids

    def visits_in_order(self, from_station: int, to_station: int) -> bool:
        """True when both stations are on the route in this order."""
        try:
            return self.stop_index(from_station) < self.stop_index(to_station)
        except ValueError:
            return False


def trip_connections(route: Route, trip: Trip) -> List["Connection"]:
    """Expand one trip into its per-leg connections."""
    from repro.graph.connection import Connection

    conns = []
    for i in range(len(route.stops) - 1):
        conns.append(
            Connection(
                u=route.stops[i],
                v=route.stops[i + 1],
                dep=trip.stop_times[i].dep,
                arr=trip.stop_times[i + 1].arr,
                trip=trip.trip_id,
            )
        )
    return conns
