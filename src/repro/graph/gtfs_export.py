"""Export timetable graphs as GTFS feeds.

The inverse of :mod:`repro.graph.gtfs_real`: writes ``stops.txt``,
``routes.txt``, ``trips.txt``, ``stop_times.txt`` and a single-service
``calendar.txt`` so synthetic networks from this repository can feed
any GTFS-consuming tool (OpenTripPlanner, gtfs-kit, visualizers) —
and so importer/exporter roundtrips can be tested hermetically.
"""

from __future__ import annotations

import csv
from pathlib import Path as FsPath
from typing import Union

from repro.graph.timetable import TimetableGraph
from repro.timeutil import SECONDS_PER_HOUR, SECONDS_PER_MINUTE

PathLike = Union[str, FsPath]

#: service_id written to calendar.txt / trips.txt.
SERVICE_ID = "everyday"


def _gtfs_time(t: int) -> str:
    """GTFS clock string; hours may exceed 23 (next service day)."""
    hours, rem = divmod(t, SECONDS_PER_HOUR)
    minutes, seconds = divmod(rem, SECONDS_PER_MINUTE)
    return f"{hours:02d}:{minutes:02d}:{seconds:02d}"


def save_gtfs(graph: TimetableGraph, directory: PathLike) -> None:
    """Write ``graph`` to ``directory`` as an unzipped GTFS feed."""
    directory = FsPath(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "stops.txt", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["stop_id", "stop_name"])
        for station in range(graph.n):
            writer.writerow([f"S{station}", graph.station_name(station)])

    with open(directory / "routes.txt", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["route_id", "route_short_name", "route_type"])
        for route in sorted(graph.routes.values(), key=lambda r: r.route_id):
            writer.writerow(
                [
                    f"R{route.route_id}",
                    route.name or f"route {route.route_id}",
                    3,  # bus
                ]
            )

    with open(directory / "trips.txt", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["route_id", "service_id", "trip_id"])
        for route in sorted(graph.routes.values(), key=lambda r: r.route_id):
            for trip in route.trips:
                writer.writerow(
                    [f"R{route.route_id}", SERVICE_ID, f"T{trip.trip_id}"]
                )

    with open(directory / "stop_times.txt", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["trip_id", "arrival_time", "departure_time", "stop_id",
             "stop_sequence"]
        )
        for route in sorted(graph.routes.values(), key=lambda r: r.route_id):
            for trip in route.trips:
                for seq, (stop, st) in enumerate(
                    zip(route.stops, trip.stop_times), start=1
                ):
                    writer.writerow(
                        [
                            f"T{trip.trip_id}",
                            _gtfs_time(st.arr),
                            _gtfs_time(st.dep),
                            f"S{stop}",
                            seq,
                        ]
                    )

    with open(directory / "calendar.txt", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "service_id", "monday", "tuesday", "wednesday", "thursday",
                "friday", "saturday", "sunday", "start_date", "end_date",
            ]
        )
        writer.writerow(
            [SERVICE_ID, 1, 1, 1, 1, 1, 1, 1, "20150101", "20251231"]
        )
