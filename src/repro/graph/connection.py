"""Connections and paths.

A :class:`Connection` is the paper's temporal edge
``e = (u, v, t_d, t_a, b)`` (Section 2): vehicle ``b`` (a *trip* id
here) departs station ``u`` at ``t_d`` and arrives at station ``v`` at
``t_a`` with no intermediate stop.

A *path* (Definition 1) is a sequence of connections where consecutive
connections are station-chained and the departure time of each
connection is no earlier than the arrival time of its predecessor.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import ValidationError


class Connection(NamedTuple):
    """A single timetabled vehicle movement between adjacent stations.

    Attributes:
        u: departure station id.
        v: arrival station id.
        dep: departure time at ``u`` (seconds since midnight).
        arr: arrival time at ``v`` (seconds since midnight).
        trip: id of the trip (the paper's "vehicle" ``b``) serving this
            connection.
    """

    u: int
    v: int
    dep: int
    arr: int
    trip: int

    @property
    def duration(self) -> int:
        """Travel time of this connection in seconds."""
        return self.arr - self.dep

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.u}->{self.v} [{self.dep}->{self.arr}] trip={self.trip}"


#: A path is simply a list of connections satisfying Definition 1.
Path = List[Connection]


def path_duration(path: Sequence[Connection]) -> int:
    """Duration of a path: arrival of its last connection minus departure
    of its first (Definition 1)."""
    if not path:
        raise ValidationError("empty path has no duration")
    return path[-1].arr - path[0].dep


def path_vehicle(path: Sequence[Connection]) -> Optional[int]:
    """The path's vehicle per Definition 1.

    Returns the shared trip id when every connection is served by the
    same trip (no transfer), otherwise ``None``.
    """
    if not path:
        raise ValidationError("empty path has no vehicle")
    first = path[0].trip
    for conn in path:
        if conn.trip != first:
            return None
    return first


def path_transfers(path: Sequence[Connection]) -> int:
    """Number of vehicle changes along the path."""
    transfers = 0
    for prev, nxt in zip(path, path[1:]):
        if prev.trip != nxt.trip:
            transfers += 1
    return transfers


def validate_path(path: Sequence[Connection]) -> None:
    """Check Definition 1 on ``path``; raise :class:`ValidationError`.

    Verifies that consecutive connections are station-chained and that
    each departure is no earlier than the previous arrival.
    """
    if not path:
        raise ValidationError("empty path")
    for conn in path:
        if conn.arr <= conn.dep:
            raise ValidationError(f"non-positive duration connection: {conn}")
    for i, (prev, nxt) in enumerate(zip(path, path[1:])):
        if prev.v != nxt.u:
            raise ValidationError(
                f"path broken at position {i}: {prev} then {nxt} "
                f"(station {prev.v} != {nxt.u})"
            )
        if nxt.dep < prev.arr:
            raise ValidationError(
                f"path not time-feasible at position {i}: departure "
                f"{nxt.dep} before arrival {prev.arr}"
            )
