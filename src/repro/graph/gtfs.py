"""GTFS-lite persistence for timetable graphs.

Real GTFS feeds are zip archives of many CSV files; the algorithms in
this repository only need stations, routes, and per-trip stop times, so
we persist a compact three-file CSV bundle:

* ``stations.csv`` — ``station_id,name``
* ``routes.csv``   — ``route_id,name,stops`` (stops ``|``-separated)
* ``stop_times.csv`` — ``trip_id,route_id,seq,arrival,departure``

The format is lossless for everything the library uses and is close
enough to GTFS that adapting a real feed is a small exercise.
"""

from __future__ import annotations

import csv
from pathlib import Path as FsPath
from typing import Dict, List, Union

from repro.errors import SerializationError
from repro.graph.route import Route, StopTime, Trip, trip_connections
from repro.graph.timetable import TimetableGraph

PathLike = Union[str, FsPath]


def save_graph_csv(graph: TimetableGraph, directory: PathLike) -> None:
    """Write ``graph`` to ``directory`` as the three-file CSV bundle."""
    directory = FsPath(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "stations.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["station_id", "name"])
        for station in range(graph.n):
            writer.writerow([station, graph.station_name(station)])

    with open(directory / "routes.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["route_id", "name", "stops"])
        for route in sorted(graph.routes.values(), key=lambda r: r.route_id):
            stops = "|".join(str(s) for s in route.stops)
            writer.writerow([route.route_id, route.name or "", stops])

    with open(directory / "stop_times.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["trip_id", "route_id", "seq", "arrival", "departure"])
        for route in sorted(graph.routes.values(), key=lambda r: r.route_id):
            for trip in route.trips:
                for seq, st in enumerate(trip.stop_times):
                    writer.writerow(
                        [trip.trip_id, route.route_id, seq, st.arr, st.dep]
                    )


def load_graph_csv(directory: PathLike) -> TimetableGraph:
    """Load a graph previously written by :func:`save_graph_csv`."""
    directory = FsPath(directory)
    for required in ("stations.csv", "routes.csv", "stop_times.csv"):
        if not (directory / required).exists():
            raise SerializationError(f"missing {required} in {directory}")

    names: List[str] = []
    with open(directory / "stations.csv", newline="") as fh:
        for row in csv.DictReader(fh):
            station = int(row["station_id"])
            if station != len(names):
                raise SerializationError(
                    f"stations.csv not densely ordered at id {station}"
                )
            names.append(row["name"])

    routes: Dict[int, Route] = {}
    with open(directory / "routes.csv", newline="") as fh:
        for row in csv.DictReader(fh):
            route_id = int(row["route_id"])
            stops = tuple(int(s) for s in row["stops"].split("|"))
            routes[route_id] = Route(
                route_id=route_id, stops=stops, name=row["name"] or None
            )

    trip_rows: Dict[int, List[dict]] = {}
    with open(directory / "stop_times.csv", newline="") as fh:
        for row in csv.DictReader(fh):
            trip_rows.setdefault(int(row["trip_id"]), []).append(row)

    for trip_id, rows in trip_rows.items():
        rows.sort(key=lambda r: int(r["seq"]))
        route_ids = {int(r["route_id"]) for r in rows}
        if len(route_ids) != 1:
            raise SerializationError(f"trip {trip_id} spans multiple routes")
        route_id = route_ids.pop()
        if route_id not in routes:
            raise SerializationError(
                f"trip {trip_id} references unknown route {route_id}"
            )
        stop_times = tuple(
            StopTime(int(r["arrival"]), int(r["departure"])) for r in rows
        )
        routes[route_id].trips.append(
            Trip(trip_id=trip_id, route_id=route_id, stop_times=stop_times)
        )

    connections: List = []
    for route in routes.values():
        route.sort_trips()
        for trip in route.trips:
            connections.extend(trip_connections(route, trip))

    return TimetableGraph(
        num_stations=len(names),
        connections=connections,
        routes=routes,
        station_names=names,
    )
