"""Importer for real GTFS feeds (unzipped directories).

The paper's datasets were GTFS feeds; this adapter lets the library
consume one directly.  It reads the four files the algorithms need —
``stops.txt``, ``routes.txt``, ``trips.txt``, ``stop_times.txt`` — and
optionally filters by ``service_id`` (one service day), producing a
:class:`~repro.graph.timetable.TimetableGraph`:

* GTFS "routes" may mix trips with different stop sequences; internal
  routes require one fixed sequence (route-based compression depends
  on it), so trips are regrouped by ``(gtfs route, exact stop
  sequence)``.
* Times like ``25:30:00`` (after midnight, same service day) are kept
  as seconds past 86 400, which the whole library supports.
* Degenerate rows (single-stop trips, non-increasing times, unknown
  stops) are dropped and counted in the returned report.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SerializationError
from repro.graph.builders import GraphBuilder
from repro.graph.timetable import TimetableGraph
from repro.timeutil import parse_time

PathLike = Union[str, FsPath]

REQUIRED_FILES = ("stops.txt", "trips.txt", "stop_times.txt")


@dataclass
class GtfsReport:
    """What the importer kept and dropped."""

    stops: int = 0
    trips_imported: int = 0
    trips_dropped: int = 0
    connections: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)

    def _drop(self, reason: str) -> None:
        self.trips_dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


def _read_rows(path: FsPath) -> List[dict]:
    with open(path, newline="", encoding="utf-8-sig") as fh:
        return list(csv.DictReader(fh))


def load_gtfs(
    directory: PathLike, service_id: Optional[str] = None
) -> Tuple[TimetableGraph, GtfsReport]:
    """Import a GTFS directory; returns ``(graph, report)``.

    Args:
        directory: unzipped GTFS feed.
        service_id: keep only trips of this service (None = all trips).
    """
    directory = FsPath(directory)
    for required in REQUIRED_FILES:
        if not (directory / required).exists():
            raise SerializationError(
                f"not a GTFS feed: missing {required} in {directory}"
            )
    report = GtfsReport()

    # Stops.
    builder = GraphBuilder()
    stop_ids: Dict[str, int] = {}
    for row in _read_rows(directory / "stops.txt"):
        gtfs_id = row.get("stop_id", "").strip()
        if not gtfs_id or gtfs_id in stop_ids:
            continue
        name = (row.get("stop_name") or gtfs_id).strip()
        stop_ids[gtfs_id] = builder.add_station(f"{name} [{gtfs_id}]")
    report.stops = len(stop_ids)

    # Route names (optional file).
    route_names: Dict[str, str] = {}
    routes_file = directory / "routes.txt"
    if routes_file.exists():
        for row in _read_rows(routes_file):
            route_id = row.get("route_id", "").strip()
            name = (
                row.get("route_short_name")
                or row.get("route_long_name")
                or route_id
            ).strip()
            if route_id:
                route_names[route_id] = name

    # Trips (with optional service filter).
    trip_route: Dict[str, str] = {}
    for row in _read_rows(directory / "trips.txt"):
        trip_id = row.get("trip_id", "").strip()
        if not trip_id:
            continue
        if service_id is not None and (
            row.get("service_id", "").strip() != service_id
        ):
            continue
        trip_route[trip_id] = row.get("route_id", "").strip()

    # Stop times, grouped per trip.
    by_trip: Dict[str, List[dict]] = {}
    for row in _read_rows(directory / "stop_times.txt"):
        trip_id = row.get("trip_id", "").strip()
        if trip_id in trip_route:
            by_trip.setdefault(trip_id, []).append(row)

    # Regroup trips by (gtfs route, exact stop sequence).
    groups: Dict[Tuple[str, Tuple[int, ...]], List[List[Tuple[int, int]]]] = {}
    for trip_id, rows in by_trip.items():
        try:
            rows.sort(key=lambda r: int(r["stop_sequence"]))
        except (KeyError, ValueError):
            report._drop("bad stop_sequence")
            continue
        stops: List[int] = []
        times: List[Tuple[int, int]] = []
        ok = True
        for row in rows:
            gtfs_stop = row.get("stop_id", "").strip()
            if gtfs_stop not in stop_ids:
                ok = False
                report._drop("unknown stop")
                break
            try:
                arr = parse_time(row["arrival_time"])
                dep = parse_time(row["departure_time"])
            except (KeyError, ValueError):
                ok = False
                report._drop("bad time")
                break
            stops.append(stop_ids[gtfs_stop])
            times.append((arr, dep))
        if not ok:
            continue
        # Collapse immediate repeats (some feeds duplicate a stop).
        deduped_stops: List[int] = []
        deduped_times: List[Tuple[int, int]] = []
        for stop, st in zip(stops, times):
            if deduped_stops and deduped_stops[-1] == stop:
                continue
            deduped_stops.append(stop)
            deduped_times.append(st)
        if len(deduped_stops) < 2:
            report._drop("single stop")
            continue
        increasing = all(
            deduped_times[i + 1][0] > deduped_times[i][1]
            and deduped_times[i][1] >= deduped_times[i][0]
            for i in range(len(deduped_times) - 1)
        )
        if not increasing:
            report._drop("non-increasing times")
            continue
        key = (trip_route[trip_id], tuple(deduped_stops))
        groups.setdefault(key, []).append(deduped_times)
        report.trips_imported += 1

    for (gtfs_route, stops), trips in sorted(groups.items()):
        route = builder.add_route(
            list(stops), name=route_names.get(gtfs_route, gtfs_route)
        )
        for times in trips:
            builder.add_trip(route, times)

    graph = builder.build()
    report.connections = graph.m
    return graph, report
