"""Graph transforms.

* :func:`reversed_graph` — time-reversal of a timetable graph.  A path
  ``u -> v`` departing ``d`` / arriving ``a`` in ``G`` corresponds to a
  path ``v -> u`` departing ``-a`` / arriving ``-d`` in the reversal,
  which turns LDP queries into EAP queries (used heavily in tests).
* :func:`extend_with_next_day` — Section 8's extended timetable: append
  a copy of every trip shifted by 24 h so overnight journeys exist.
* :func:`induced_subgraph` — restrict to a station subset, splitting
  routes into the surviving fragments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ValidationError
from repro.graph.route import Route, StopTime, Trip
from repro.graph.timetable import TimetableGraph
from repro.timeutil import SECONDS_PER_DAY


def reversed_graph(graph: TimetableGraph) -> TimetableGraph:
    """Time-reversal of ``graph``.

    Every route's stop sequence is reversed and every timestamp ``t``
    becomes ``-t`` (arrivals and departures swap roles).  Trip and
    route ids are preserved, so results translate back directly.
    """
    routes: Dict[int, Route] = {}
    for route in graph.routes.values():
        new_trips = []
        for trip in route.trips:
            new_stop_times = tuple(
                StopTime(arr=-st.dep, dep=-st.arr)
                for st in reversed(trip.stop_times)
            )
            new_trips.append(
                Trip(
                    trip_id=trip.trip_id,
                    route_id=route.route_id,
                    stop_times=new_stop_times,
                )
            )
        routes[route.route_id] = Route(
            route_id=route.route_id,
            stops=tuple(reversed(route.stops)),
            trips=new_trips,
            name=route.name,
        )
    connections = [
        type(c)(u=c.v, v=c.u, dep=-c.arr, arr=-c.dep, trip=c.trip)
        for c in graph.connections
    ]
    return TimetableGraph(
        num_stations=graph.n,
        connections=connections,
        routes=routes,
        station_names=graph.station_names,
    )


def extend_with_next_day(graph: TimetableGraph) -> TimetableGraph:
    """Section 8's extended timetable: two consecutive service days.

    Every trip is duplicated with all times shifted by 24 h; duplicated
    trips stay on their original route (so route-based compression
    still groups them) and receive fresh trip ids above the existing
    maximum.
    """
    max_trip = max(graph.trips, default=-1)
    next_trip = max_trip + 1
    routes: Dict[int, Route] = {}
    for route in graph.routes.values():
        new_trips = list(route.trips)
        for trip in route.trips:
            shifted = Trip(
                trip_id=next_trip,
                route_id=route.route_id,
                stop_times=tuple(
                    StopTime(st.arr + SECONDS_PER_DAY, st.dep + SECONDS_PER_DAY)
                    for st in trip.stop_times
                ),
            )
            next_trip += 1
            new_trips.append(shifted)
        routes[route.route_id] = Route(
            route_id=route.route_id,
            stops=route.stops,
            trips=new_trips,
            name=route.name,
        )
    connections: List = []
    from repro.graph.route import trip_connections

    for route in routes.values():
        route.sort_trips()
        for trip in route.trips:
            connections.extend(trip_connections(route, trip))
    return TimetableGraph(
        num_stations=graph.n,
        connections=connections,
        routes=routes,
        station_names=graph.station_names,
    )


def induced_subgraph(
    graph: TimetableGraph, stations: Iterable[int]
) -> Tuple[TimetableGraph, Dict[int, int]]:
    """Restrict ``graph`` to a station subset.

    Routes are split into maximal fragments whose stops all survive;
    fragments shorter than two stops are dropped.

    Returns:
        ``(subgraph, old_to_new)`` where ``old_to_new`` maps retained
        old station ids to their new dense ids.
    """
    keep = sorted(set(stations))
    for s in keep:
        if not 0 <= s < graph.n:
            raise ValidationError(f"station {s} not in graph")
    old_to_new = {old: new for new, old in enumerate(keep)}

    routes: Dict[int, Route] = {}
    next_route_id = 0
    next_trip_id = 0
    for route in graph.routes.values():
        # Maximal runs of consecutive surviving stops.
        runs: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for i, stop in enumerate(route.stops):
            if stop in old_to_new:
                if start is None:
                    start = i
            else:
                if start is not None and i - start >= 2:
                    runs.append((start, i))
                start = None
        if start is not None and len(route.stops) - start >= 2:
            runs.append((start, len(route.stops)))

        for lo, hi in runs:
            new_stops = tuple(old_to_new[s] for s in route.stops[lo:hi])
            new_trips = []
            for trip in route.trips:
                new_trips.append(
                    Trip(
                        trip_id=next_trip_id,
                        route_id=next_route_id,
                        stop_times=trip.stop_times[lo:hi],
                    )
                )
                next_trip_id += 1
            routes[next_route_id] = Route(
                route_id=next_route_id,
                stops=new_stops,
                trips=new_trips,
                name=route.name,
            )
            next_route_id += 1

    from repro.graph.route import trip_connections

    connections: List = []
    for route in routes.values():
        route.sort_trips()
        for trip in route.trips:
            connections.extend(trip_connections(route, trip))
    names = None
    if graph.station_names is not None:
        names = [graph.station_names[s] for s in keep]
    sub = TimetableGraph(
        num_stations=len(keep),
        connections=connections,
        routes=routes,
        station_names=names,
    )
    return sub, old_to_new
