"""The timetable graph (Section 2 of the paper).

:class:`TimetableGraph` is an immutable multigraph over ``n`` stations
whose edges are :class:`~repro.graph.connection.Connection` records.
Adjacency is pre-sorted for the search algorithms:

* ``out[u]`` — outgoing connections of ``u`` sorted by departure time;
* ``inc[v]`` — incoming connections of ``v`` sorted by arrival time;

with parallel key arrays (``out_deps`` / ``inc_arrs``) so searches can
``bisect`` straight to the first boardable connection.

Graphs are built through :class:`~repro.graph.builders.GraphBuilder`;
constructing one directly requires already-consistent inputs.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    UnknownRouteError,
    UnknownStationError,
    UnknownTripError,
    ValidationError,
)
from repro.graph.connection import Connection
from repro.graph.route import Route, Trip


@dataclass(frozen=True)
class GraphStats:
    """Summary characteristics of a timetable graph (cf. Table 3)."""

    num_stations: int
    num_connections: int
    num_trips: int
    num_routes: int
    min_time: int
    max_time: int
    avg_out_degree: float

    def row(self) -> Tuple[int, int, int, int]:
        """The ``(n, m, trips, routes)`` tuple reported in Table 3."""
        return (
            self.num_stations,
            self.num_connections,
            self.num_trips,
            self.num_routes,
        )


class TimetableGraph:
    """Immutable timetable multigraph.

    Args:
        num_stations: number of stations; station ids are
            ``0 .. num_stations - 1``.
        connections: every temporal edge in the network.
        routes: route structures (required for route-based compression;
            may be empty for ad-hoc graphs).
        station_names: optional human-readable station names.
        validate: run full consistency checks (default True).
    """

    def __init__(
        self,
        num_stations: int,
        connections: Iterable[Connection],
        routes: Optional[Dict[int, Route]] = None,
        station_names: Optional[Sequence[str]] = None,
        validate: bool = True,
    ) -> None:
        self.n = int(num_stations)
        self.connections: Tuple[Connection, ...] = tuple(connections)
        self.routes: Dict[int, Route] = dict(routes or {})
        self.station_names: Optional[Tuple[str, ...]] = (
            tuple(station_names) if station_names is not None else None
        )

        self.trips: Dict[int, Trip] = {}
        self.trip_to_route: Dict[int, int] = {}
        for route in self.routes.values():
            for trip in route.trips:
                self.trips[trip.trip_id] = trip
                self.trip_to_route[trip.trip_id] = route.route_id

        if validate:
            # Validate before building adjacency so malformed
            # connections raise ValidationError, not IndexError.
            self.validate()

        # Adjacency sorted for bisect-based boarding lookups.
        self.out: List[List[Connection]] = [[] for _ in range(self.n)]
        self.inc: List[List[Connection]] = [[] for _ in range(self.n)]
        for conn in self.connections:
            self.out[conn.u].append(conn)
            self.inc[conn.v].append(conn)
        for conns in self.out:
            conns.sort(key=lambda c: (c.dep, c.arr))
        for conns in self.inc:
            conns.sort(key=lambda c: (c.arr, c.dep))

        self.out_deps: List[List[int]] = [
            [c.dep for c in conns] for conns in self.out
        ]
        self.inc_arrs: List[List[int]] = [
            [c.arr for c in conns] for conns in self.inc
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of connections (temporal edges)."""
        return len(self.connections)

    def station_name(self, station: int) -> str:
        """Human-readable name for ``station`` (falls back to the id)."""
        self._check_station(station)
        if self.station_names is not None:
            return self.station_names[station]
        return f"s{station}"

    def out_degree(self, station: int) -> int:
        """Number of outgoing connections of ``station``."""
        self._check_station(station)
        return len(self.out[station])

    def in_degree(self, station: int) -> int:
        """Number of incoming connections of ``station``."""
        self._check_station(station)
        return len(self.inc[station])

    def departure_times(self, station: int) -> List[int]:
        """Sorted distinct departure times of ``station``'s outgoing
        connections (the paper's ``T_d``)."""
        self._check_station(station)
        return sorted({c.dep for c in self.out[station]})

    def arrival_times(self, station: int) -> List[int]:
        """Sorted distinct arrival times of ``station``'s incoming
        connections (the paper's ``T_a``)."""
        self._check_station(station)
        return sorted({c.arr for c in self.inc[station]})

    def route_of_trip(self, trip_id: int) -> Route:
        """The route served by ``trip_id``."""
        route_id = self.trip_to_route.get(trip_id)
        if route_id is None:
            raise UnknownTripError(trip_id)
        return self.routes[route_id]

    def route(self, route_id: int) -> Route:
        """Route by id."""
        try:
            return self.routes[route_id]
        except KeyError:
            raise UnknownRouteError(route_id) from None

    def stats(self) -> GraphStats:
        """Summary statistics of the network."""
        if self.connections:
            min_time = min(c.dep for c in self.connections)
            max_time = max(c.arr for c in self.connections)
        else:
            min_time = max_time = 0
        avg_out = self.m / self.n if self.n else 0.0
        return GraphStats(
            num_stations=self.n,
            num_connections=self.m,
            num_trips=len({c.trip for c in self.connections}),
            num_routes=len(self.routes),
            min_time=min_time,
            max_time=max_time,
            avg_out_degree=avg_out,
        )

    # ------------------------------------------------------------------
    # Search support
    # ------------------------------------------------------------------

    def first_boardable(self, station: int, t: int) -> int:
        """Index of the first outgoing connection of ``station`` with
        departure time ``>= t`` (for forward searches)."""
        return bisect_left(self.out_deps[station], t)

    def last_alightable(self, station: int, t: int) -> int:
        """One past the index of the last incoming connection of
        ``station`` with arrival time ``<= t`` (for backward searches)."""
        from bisect import bisect_right

        return bisect_right(self.inc_arrs[station], t)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValidationError`."""
        if self.n < 0:
            raise ValidationError(f"negative station count: {self.n}")
        for conn in self.connections:
            if not (0 <= conn.u < self.n and 0 <= conn.v < self.n):
                raise ValidationError(f"connection off the graph: {conn}")
            if conn.u == conn.v:
                raise ValidationError(f"self-loop connection: {conn}")
            if conn.arr <= conn.dep:
                raise ValidationError(
                    f"connection must take positive time: {conn}"
                )
        for route in self.routes.values():
            route.validate()
            for stop in route.stops:
                if not 0 <= stop < self.n:
                    raise ValidationError(
                        f"route {route.route_id} visits unknown station {stop}"
                    )
        if self.station_names is not None and len(self.station_names) != self.n:
            raise ValidationError(
                f"{len(self.station_names)} names for {self.n} stations"
            )

    def _check_station(self, station: int) -> None:
        if not 0 <= station < self.n:
            raise UnknownStationError(station)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimetableGraph(n={self.n}, m={self.m}, "
            f"routes={len(self.routes)})"
        )
