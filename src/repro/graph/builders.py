"""Fluent construction of timetable graphs.

:class:`GraphBuilder` is the supported way to assemble a
:class:`~repro.graph.timetable.TimetableGraph`.  It accepts either

* structured input — routes with per-trip stop times (preferred;
  enables route-based compression), via :meth:`add_route` /
  :meth:`add_trip`; or
* raw connections via :meth:`add_connection`, each of which becomes a
  two-stop single-trip route so that every graph built here carries
  full route structure.

Stations can be registered by name; ids are handed out densely in
registration order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.graph.connection import Connection
from repro.graph.route import Route, StopTime, Trip, trip_connections
from repro.graph.timetable import TimetableGraph


class GraphBuilder:
    """Incrementally assemble a timetable graph.

    Example::

        builder = GraphBuilder()
        a, b, c = (builder.add_station(x) for x in "abc")
        r = builder.add_route([a, b, c])
        builder.add_trip(r, [(480, 480), (500, 505), (520, 520)])
        graph = builder.build()
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._name_to_id: Dict[str, int] = {}
        self._routes: Dict[int, Route] = {}
        self._next_route_id = 0
        self._next_trip_id = 0

    # ------------------------------------------------------------------
    # Stations
    # ------------------------------------------------------------------

    def add_station(self, name: Optional[str] = None) -> int:
        """Register a station and return its id.

        Re-registering an existing name returns the existing id.
        """
        if name is not None and name in self._name_to_id:
            return self._name_to_id[name]
        station = len(self._names)
        if name is None:
            name = f"s{station}"
            if name in self._name_to_id:
                raise ValidationError(f"auto-name collision: {name}")
        self._names.append(name)
        self._name_to_id[name] = station
        return station

    def add_stations(self, count: int) -> List[int]:
        """Register ``count`` anonymous stations and return their ids."""
        return [self.add_station() for _ in range(count)]

    def station_id(self, name: str) -> int:
        """Id of a previously registered station name."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise ValidationError(f"unregistered station name: {name!r}") from None

    @property
    def num_stations(self) -> int:
        """Number of stations registered so far."""
        return len(self._names)

    # ------------------------------------------------------------------
    # Routes and trips
    # ------------------------------------------------------------------

    def add_route(
        self, stops: Sequence[int], name: Optional[str] = None
    ) -> int:
        """Register a route over already-registered station ids."""
        for stop in stops:
            if not 0 <= stop < len(self._names):
                raise ValidationError(f"route stop {stop} not registered")
        route_id = self._next_route_id
        self._next_route_id += 1
        self._routes[route_id] = Route(
            route_id=route_id, stops=tuple(stops), name=name
        )
        return route_id

    def add_trip(
        self, route_id: int, stop_times: Sequence[Tuple[int, int]]
    ) -> int:
        """Add one timetabled trip to a route.

        Args:
            route_id: route to serve.
            stop_times: ``(arrival, departure)`` pairs, one per stop.

        Returns:
            The new trip id.
        """
        if route_id not in self._routes:
            raise ValidationError(f"unknown route id: {route_id}")
        trip_id = self._next_trip_id
        self._next_trip_id += 1
        trip = Trip(
            trip_id=trip_id,
            route_id=route_id,
            stop_times=tuple(StopTime(arr, dep) for arr, dep in stop_times),
        )
        trip.validate(len(self._routes[route_id].stops))
        self._routes[route_id].trips.append(trip)
        return trip_id

    def add_trip_departures(
        self,
        route_id: int,
        first_departure: int,
        leg_durations: Sequence[int],
        dwell: int = 0,
    ) -> int:
        """Convenience: add a trip from a start time and leg durations.

        Args:
            route_id: route to serve.
            first_departure: departure time from the first stop.
            leg_durations: travel seconds for each leg (``len(stops)-1``).
            dwell: dwell seconds at every intermediate stop.
        """
        route = self._routes.get(route_id)
        if route is None:
            raise ValidationError(f"unknown route id: {route_id}")
        if len(leg_durations) != len(route.stops) - 1:
            raise ValidationError(
                f"route {route_id} has {len(route.stops) - 1} legs, got "
                f"{len(leg_durations)} durations"
            )
        stop_times = [(first_departure, first_departure)]
        t = first_departure
        for i, leg in enumerate(leg_durations):
            if leg <= 0:
                raise ValidationError(f"leg duration must be positive: {leg}")
            t += leg
            arr = t
            dep = t + (dwell if i < len(leg_durations) - 1 else 0)
            stop_times.append((arr, dep))
            t = dep
        return self.add_trip(route_id, stop_times)

    # ------------------------------------------------------------------
    # Raw connections
    # ------------------------------------------------------------------

    def add_connection(self, u: int, v: int, dep: int, arr: int) -> int:
        """Add a standalone connection as its own two-stop route/trip.

        Returns the trip id created for the connection.
        """
        route_id = self.add_route([u, v])
        return self.add_trip(route_id, [(dep, dep), (arr, arr)])

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self, validate: bool = True) -> TimetableGraph:
        """Materialize the immutable graph."""
        connections: List[Connection] = []
        for route in self._routes.values():
            route.sort_trips()
            for trip in route.trips:
                connections.extend(trip_connections(route, trip))
        return TimetableGraph(
            num_stations=len(self._names),
            connections=connections,
            routes=self._routes,
            station_names=self._names,
            validate=validate,
        )


def graph_from_connections(
    connections: Sequence[Tuple[int, int, int, int]],
    num_stations: Optional[int] = None,
) -> TimetableGraph:
    """Build a graph from bare ``(u, v, dep, arr)`` tuples.

    Each tuple becomes its own single-trip route.  Useful in tests and
    for property-based graph generation.
    """
    if num_stations is None:
        num_stations = 0
        for u, v, _, _ in connections:
            num_stations = max(num_stations, u + 1, v + 1)
    builder = GraphBuilder()
    builder.add_stations(num_stations)
    for u, v, dep, arr in connections:
        builder.add_connection(u, v, dep, arr)
    return builder.build()
