"""Timetable-graph substrate.

This subpackage implements the paper's data model (Section 2): a
multigraph whose nodes are stations and whose edges are *connections* —
tuples ``(u, v, t_dep, t_arr, trip)`` stating that a vehicle (trip)
leaves station ``u`` at ``t_dep`` and arrives at station ``v`` at
``t_arr`` with no stop in between.  Trips are grouped into routes
(shared stop sequences), which the route-based label compression of
Section 7.1 exploits.
"""

from repro.graph.connection import Connection, Path, path_duration, validate_path
from repro.graph.route import Route, StopTime, Trip
from repro.graph.timetable import GraphStats, TimetableGraph
from repro.graph.builders import GraphBuilder
from repro.graph.transforms import (
    extend_with_next_day,
    induced_subgraph,
    reversed_graph,
)
from repro.graph.gtfs import load_graph_csv, save_graph_csv
from repro.graph.gtfs_real import GtfsReport, load_gtfs
from repro.graph.gtfs_export import save_gtfs

__all__ = [
    "Connection",
    "Path",
    "path_duration",
    "validate_path",
    "Route",
    "StopTime",
    "Trip",
    "GraphStats",
    "TimetableGraph",
    "GraphBuilder",
    "extend_with_next_day",
    "induced_subgraph",
    "reversed_graph",
    "load_graph_csv",
    "save_graph_csv",
    "load_gtfs",
    "GtfsReport",
    "save_gtfs",
]
