"""Cross-region query stitching: the hub-label join between shards.

A federated query ``u -> v`` decomposes at the region boundary.  Any
journey that changes region has a *first* cut connection — its tail
``b1`` is a border stop in ``u``'s region, and everything before it is
internal to that region — and a *last* cut connection whose head
``b2`` is a border stop in ``v``'s region, with everything after it
internal there.  The section between ``b1`` and ``b2`` may wander the
whole network, which is exactly what the border mini-index covers.
The stitched answer is therefore the three-way join

    local-labels(u, b1)  ⋈  border-index(b1, b2)  ⋈  local-labels(b2, v)

with dominance filtering at the seam, and it is **exact**:

* **EAP** composes forward through the two seams by monotonicity
  (leaving earlier never arrives later):
  ``arr = min_b2 localB.eap(b2, v, min_b1 border.eap(b1, b2,
  localA.eap(u, b1, t)))``.
* **LDP** is the mirror image, composed backward.
* **Profile** enumerates candidate departures from the *local* Pareto
  profiles ``u -> b1`` (their departures are the journeys' actual
  departures), pushes each through the EAP composition, and
  Pareto-filters; every candidate is realizable and every monolithic
  Pareto pair is matched (a candidate that weakly dominates a
  realizable non-dominated pair must equal it), so the stitched pair
  set is byte-identical to the monolithic profile.

Intra-region queries are *also* exact without leaving the worker: a
journey between two stations of region ``A`` either stays internal
(the local shard answers it) or leaves and re-enters through border
stops of ``A`` on both sides — the same stitch, joined entirely
against the worker's own shard plus the shared border index.  The
final answer is the dominance merge of both, so an intra-region query
never touches another shard (no fan-out), yet still matches the
monolith even when the optimal route detours through a neighboring
region.

EAP/LDP answers are returned as the canonical Pareto corner: the
arrival is computed first, then the departure as the latest departure
achieving it (and vice versa for LDP).  Monolithic planners tie-break
departures by hub order, which is index-layout-dependent; the
federation returns the well-defined corner instead, so its EAP
arrivals / LDP departures — the optimized quantities — always equal
the monolith's.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.core.metrics import QueryMetrics
from repro.core.order import graph_digest
from repro.core.queries import TTLPlanner
from repro.core.serialize import load_index
from repro.errors import FederationError
from repro.federation.border import BorderIndex
from repro.federation.manifest import FederationManifest
from repro.graph.timetable import TimetableGraph
from repro.graph.transforms import induced_subgraph
from repro.journey import Journey
from repro.planner import RoutePlanner
from repro.query import QueryRequest
from repro.timeutil import INF, NEG_INF


class RegionShard:
    """One region's local planner, queried with *global* station ids.

    ``stops`` is the sorted global-id list from the manifest; local id
    ``i`` is the i-th stop, which is exactly the id assignment
    :func:`~repro.graph.transforms.induced_subgraph` makes, so a shard
    built at federation time and one reloaded from the manifest agree.
    """

    def __init__(
        self,
        region: int,
        stops: Sequence[int],
        graph: TimetableGraph,
        index=None,
        planner: Optional[TTLPlanner] = None,
    ) -> None:
        if graph.n != len(stops):
            raise FederationError(
                f"region {region}: shard graph has {graph.n} stations "
                f"but the manifest lists {len(stops)} stops"
            )
        self.region = region
        self.stops = list(stops)
        self.graph = graph
        self._local = {g: i for i, g in enumerate(self.stops)}
        self.planner = planner or TTLPlanner(graph, index=index)

    @property
    def index(self):
        return self.planner.index

    def has(self, station: int) -> bool:
        return station in self._local

    def local(self, station: int) -> int:
        try:
            return self._local[station]
        except KeyError:
            raise FederationError(
                f"station {station} is not in region {self.region}"
            ) from None

    # Value-level queries (global ids in, plain times out).  All three
    # go through the planner's unified ``plan`` entry point — the shard
    # never names a query method.

    def eap_value(self, u: int, v: int, t: int) -> int:
        result = self.planner.plan(
            QueryRequest("eap", self.local(u), self.local(v), t=t)
        )
        return result.journey.arr if result.journey is not None else INF

    def ldp_value(self, u: int, v: int, t: int) -> int:
        result = self.planner.plan(
            QueryRequest("ldp", self.local(u), self.local(v), t_end=t)
        )
        return (
            result.journey.dep if result.journey is not None else NEG_INF
        )

    def profile_pairs(
        self, u: int, v: int, t: int, t_end: int
    ) -> List[Tuple[int, int]]:
        result = self.planner.plan(
            QueryRequest(
                "profile", self.local(u), self.local(v), t=t, t_end=t_end
            )
        )
        return [tuple(pair) for pair in result.pairs]


class FederatedPlanner(RoutePlanner):
    """Exact EAP/LDP/SDP/profile over a federation of region shards.

    ``shards`` may hold every region (the in-process / CLI view) or a
    single one (a serving worker, which stitches intra-region queries
    itself and exposes the seam primitives for the router to join
    cross-region queries across workers).  Queries touching a region
    that is not loaded raise :class:`FederationError`.
    """

    name = "TTL-fed"

    def __init__(
        self,
        graph: TimetableGraph,
        manifest: FederationManifest,
        shards: Dict[int, RegionShard],
        border: BorderIndex,
    ) -> None:
        super().__init__(graph)
        self.manifest = manifest
        self.shards = shards
        self.border = border
        self.borders_by_region = manifest.borders_by_region()
        self.metrics = QueryMetrics()
        #: Query-routing counters (benchmarks read these).
        self.intra_queries = 0
        self.cross_queries = 0

    # ------------------------------------------------------------------
    # RoutePlanner lifecycle
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for shard in self.shards.values():
            shard.planner.preprocess()

    def index_bytes(self) -> int:
        self.preprocess()
        return (
            sum(s.planner.index_bytes() for s in self.shards.values())
            + self.border.nbytes()
        )

    def store_bytes(self) -> int:
        """Retained bytes of the loaded shards + border index (the
        per-worker memory bound the benchmark verifies)."""
        total = self.border.nbytes()
        for shard in self.shards.values():
            index = shard.index
            if index is not None:
                total += index.store_bytes()
        return total

    # ------------------------------------------------------------------
    # Region plumbing
    # ------------------------------------------------------------------

    def region(self, station: int) -> int:
        return self.manifest.stop_region(station)

    def _shard(self, region: int) -> RegionShard:
        shard = self.shards.get(region)
        if shard is None:
            raise FederationError(
                f"region {region} is not loaded in this planner "
                f"(loaded: {sorted(self.shards)})"
            )
        return shard

    # ------------------------------------------------------------------
    # Seam primitives (one shard each — a worker can run any of them;
    # the router chains out -> close across two workers)
    # ------------------------------------------------------------------

    def reach_out(
        self, u: int, t: int, target_region: int
    ) -> Dict[int, int]:
        """Earliest arrival at each border stop of ``target_region``
        for a journey leaving ``u`` no sooner than ``t`` (source-shard
        labels joined with the border index)."""
        region = self.region(u)
        shard = self._shard(region)
        t1 = {}
        for b1 in self.borders_by_region[region]:
            arr = shard.eap_value(u, b1, t)
            if arr < INF:
                t1[b1] = arr
        out: Dict[int, int] = {}
        for b2 in self.borders_by_region[target_region]:
            best = INF
            for b1, arr in t1.items():
                cand = arr if b1 == b2 else self.border.eap(b1, b2, arr)
                if cand < best:
                    best = cand
            if best < INF:
                out[b2] = best
        return out

    def eap_close(self, v: int, t2: Dict[int, int]) -> int:
        """Finish an EAP stitch on ``v``'s shard: earliest arrival at
        ``v`` over the border arrivals ``t2``."""
        shard = self._shard(self.region(v))
        best = INF
        for b2, t in t2.items():
            arr = shard.eap_value(b2, v, t)
            if arr < best:
                best = arr
        return best

    def reach_back(
        self, v: int, t: int, source_region: int
    ) -> Dict[int, int]:
        """LDP mirror of :meth:`reach_out`: latest departure from each
        border stop of ``source_region`` that still reaches ``v`` by
        ``t`` (target-shard labels joined with the border index)."""
        region = self.region(v)
        shard = self._shard(region)
        s2 = {}
        for b2 in self.borders_by_region[region]:
            dep = shard.ldp_value(b2, v, t)
            if dep > NEG_INF:
                s2[b2] = dep
        out: Dict[int, int] = {}
        for b1 in self.borders_by_region[source_region]:
            best = NEG_INF
            for b2, dep in s2.items():
                cand = dep if b1 == b2 else self.border.ldp(b1, b2, dep)
                if cand > best:
                    best = cand
            if best > NEG_INF:
                out[b1] = best
        return out

    def ldp_close(self, u: int, s1: Dict[int, int]) -> int:
        """Finish an LDP stitch on ``u``'s shard."""
        shard = self._shard(self.region(u))
        best = NEG_INF
        for b1, t in s1.items():
            dep = shard.ldp_value(u, b1, t)
            if dep > best:
                best = dep
        return best

    def profile_out(
        self, u: int, t: int, t_end: int, target_region: int
    ) -> List[Tuple[int, int, int]]:
        """Profile candidates ``(dep, b2, arr_at_b2)`` reaching the
        border of ``target_region``, Pareto-pruned per border stop.

        Candidate departures come from the local Pareto profiles
        ``u -> b1`` — or, when ``u`` is itself a border stop, from the
        border profiles directly (the local profile of ``u -> u``
        cannot enumerate departures).
        """
        region = self.region(u)
        shard = self._shard(region)
        per_b2: Dict[int, ParetoProfile] = {}
        targets = self.borders_by_region[target_region]
        for b1 in self.borders_by_region[region]:
            if b1 == u:
                for b2 in targets:
                    profile = None
                    for dep, a2 in self.border.pairs(u, b2, t, t_end):
                        if profile is None:
                            profile = per_b2.setdefault(
                                b2, ParetoProfile()
                            )
                        profile.add(dep, a2)
                continue
            base = shard.profile_pairs(u, b1, t, t_end)
            if not base:
                continue
            for b2 in targets:
                profile = per_b2.setdefault(b2, ParetoProfile())
                for dep, a1 in base:
                    a2 = a1 if b1 == b2 else self.border.eap(b1, b2, a1)
                    if a2 < INF:
                        profile.add(dep, a2)
        return [
            (dep, b2, a2)
            for b2, profile in sorted(per_b2.items())
            for dep, a2 in profile
        ]

    def profile_close(
        self,
        v: int,
        t_end: int,
        candidates: Iterable[Tuple[int, int, int]],
        seed_pairs: Iterable[Tuple[int, int]] = (),
    ) -> List[Tuple[int, int]]:
        """Finish a profile stitch on ``v``'s shard: push every
        candidate through the local suffix and dominance-filter,
        merged with ``seed_pairs`` (the local profile, for intra-region
        queries)."""
        shard = self._shard(self.region(v))
        profile = ParetoProfile(seed_pairs)
        for dep, b2, a2 in candidates:
            arr = shard.eap_value(b2, v, a2)
            if arr < INF and arr <= t_end:
                profile.add(dep, arr)
        return profile.pairs()

    # ------------------------------------------------------------------
    # Value-level stitched queries
    # ------------------------------------------------------------------

    def _eap_value(self, u: int, v: int, t: int) -> int:
        region_u, region_v = self.region(u), self.region(v)
        stitched = self.eap_close(v, self.reach_out(u, t, region_v))
        if region_u != region_v:
            return stitched
        return min(stitched, self._shard(region_u).eap_value(u, v, t))

    def _ldp_value(self, u: int, v: int, t: int) -> int:
        region_u, region_v = self.region(u), self.region(v)
        stitched = self.ldp_close(u, self.reach_back(v, t, region_u))
        if region_u != region_v:
            return stitched
        return max(stitched, self._shard(region_u).ldp_value(u, v, t))

    def _profile_pairs(
        self, u: int, v: int, t: int, t_end: int
    ) -> List[Tuple[int, int]]:
        region_u, region_v = self.region(u), self.region(v)
        candidates = self.profile_out(u, t, t_end, region_v)
        seed: Iterable[Tuple[int, int]] = ()
        if region_u == region_v:
            seed = self._shard(region_u).profile_pairs(u, v, t, t_end)
        return self.profile_close(v, t_end, candidates, seed_pairs=seed)

    def _count(self, u: int, v: int) -> None:
        self.metrics.queries += 1
        if self.region(u) == self.region(v):
            self.intra_queries += 1
        else:
            self.cross_queries += 1

    # ------------------------------------------------------------------
    # RoutePlanner queries
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self._count(source, destination)
        arr = self._eap_value(source, destination, t)
        if arr >= INF:
            return None
        dep = self._ldp_value(source, destination, arr)
        return Journey(source, destination, dep, arr)

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self._count(source, destination)
        dep = self._ldp_value(source, destination, t)
        if dep <= NEG_INF:
            return None
        arr = self._eap_value(source, destination, dep)
        return Journey(source, destination, dep, arr)

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        self.preprocess()
        self._count(source, destination)
        best = ParetoProfile(
            self._profile_pairs(source, destination, t, t_end)
        ).best_duration(t, t_end)
        if best is None:
            return None
        dep, arr, _ = best
        return Journey(source, destination, dep, arr)

    def profile(
        self, source: int, destination: int, t: int, t_end: int
    ) -> List[Tuple[int, int]]:
        """All non-dominated ``(dep, arr)`` journeys in the window —
        byte-identical to the monolithic index's profile."""
        self._check_query(source, destination)
        self._check_window(t, t_end)
        if source == destination:
            return [(t, t)]
        self.preprocess()
        self._count(source, destination)
        return self._profile_pairs(source, destination, t, t_end)

    def one_to_many(
        self, source: int, targets: Iterable[int], t: int
    ) -> Dict[int, Optional[int]]:
        """Federated one-to-many earliest arrivals (matches
        :func:`repro.core.batch.one_to_many_eat` semantics)."""
        self._check_query(source, source)
        self.preprocess()
        result: Dict[int, Optional[int]] = {}
        for target in targets:
            self._check_query(source, target)
            if target == source:
                result[target] = t
                continue
            self._count(source, target)
            arr = self._eap_value(source, target, t)
            result[target] = arr if arr < INF else None
        return result


def load_federation(
    manifest_path: str,
    graph: TimetableGraph,
    regions: Optional[Iterable[int]] = None,
    mmap: bool = False,
    verify: bool = True,
) -> FederatedPlanner:
    """Load a federation directory into a :class:`FederatedPlanner`.

    Args:
        manifest_path: the ``federation.json`` written by
            :func:`repro.federation.build.build_federation`.
        graph: the full timetable the federation was built for (its
            digest is checked against the manifest).
        regions: restrict to these region shards (a serving worker
            passes its own region); default loads every shard.
        mmap: memory-map the shard files (zero-copy TTLIDX03 load).
        verify: re-hash every shard + the border index against the
            manifest before loading (a worker behind a supervisor that
            already verified passes ``False``).
    """
    manifest = FederationManifest.load(manifest_path)
    manifest.check_graph(graph_digest(graph))
    if verify:
        manifest.verify_files()
    with open(manifest.resolve(manifest.border_path)) as fh:
        border = BorderIndex.from_json(fh.read())
    wanted = set(regions) if regions is not None else None
    shards: Dict[int, RegionShard] = {}
    for entry in manifest.regions:
        if wanted is not None and entry.region not in wanted:
            continue
        sub, _ = induced_subgraph(graph, entry.stops)
        index = load_index(
            manifest.resolve(entry.path), sub, mmap=mmap, verify=False
        )
        shards[entry.region] = RegionShard(
            entry.region, entry.stops, sub, index=index
        )
    if wanted is not None and wanted != set(shards):
        raise FederationError(
            f"regions {sorted(wanted - set(shards))} not in the "
            f"manifest (it has 0..{manifest.num_regions - 1})"
        )
    return FederatedPlanner(graph, manifest, shards, border)
