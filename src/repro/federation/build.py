"""Build a federation directory: region shards + border index + manifest.

Each region's stations are carved out with
:func:`~repro.graph.transforms.induced_subgraph` (cut connections are
dropped — shards are internal-only by construction) and indexed
through the :mod:`repro.buildfarm` pipeline, so region builds get the
same chunked parallel label construction, cover pruning, and progress
tracking as monolithic builds.  The border mini-index is built over
the *full* graph (it must see cross-region connections) and saved
alongside.  The ``TTLFED01`` manifest pins everything by digest.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.buildfarm import build_index_parallel
from repro.core.order import graph_digest
from repro.core.serialize import atomic_write, save_index
from repro.errors import FederationError
from repro.federation.border import build_border_index
from repro.federation.manifest import (
    FederationManifest,
    RegionEntry,
    file_digest,
)
from repro.federation.partition import Partition
from repro.graph.timetable import TimetableGraph
from repro.graph.transforms import induced_subgraph

#: File-name scheme inside a federation directory.
BORDER_FILENAME = "border.json"
MANIFEST_FILENAME = "federation.json"


def region_filename(region: int) -> str:
    return f"region_{region}.ttl"


def build_federation(
    graph: TimetableGraph,
    partition: Partition,
    out_dir: str,
    *,
    order: str = "hub",
    jobs: int = 1,
    dataset: Optional[dict] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FederationManifest:
    """Build every region shard + the border index into ``out_dir``.

    Args:
        graph: the full timetable.
        partition: station → region assignment (must cover the graph).
        out_dir: target directory (created if missing).
        order: hub-order spec forwarded to the label builder.
        jobs: parallel build workers *per region build* (regions are
            built sequentially; each build fans out internally).
        dataset: optional provenance dict recorded in the manifest.
        progress: optional callback receiving human-readable phase
            lines (the CLI prints them).

    Returns:
        The saved :class:`FederationManifest` (directory set).
    """
    if graph.n != partition.n:
        raise FederationError(
            f"partition covers {partition.n} stations but the graph "
            f"has {graph.n}"
        )
    os.makedirs(out_dir, exist_ok=True)

    def say(line: str) -> None:
        if progress is not None:
            progress(line)

    entries = []
    for region, stops in enumerate(partition.regions()):
        say(
            f"region {region}: building index over {len(stops)} "
            f"stations (jobs={jobs})"
        )
        subgraph, _ = induced_subgraph(graph, stops)
        index = build_index_parallel(subgraph, order=order, jobs=jobs)
        path = os.path.join(out_dir, region_filename(region))
        save_index(index, path)
        entries.append(
            RegionEntry(
                region=region,
                stops=list(stops),
                path=region_filename(region),
                digest=file_digest(path),
                labels=index.num_labels,
            )
        )

    border_stops = partition.border_stops(graph)
    say(
        f"border index: {len(border_stops)} border stops, "
        f"{partition.cut_size(graph)} cut connections"
    )
    border = build_border_index(graph, border_stops)
    border_file = os.path.join(out_dir, BORDER_FILENAME)
    with atomic_write(border_file) as fh:
        fh.write(border.to_json().encode() + b"\n")

    manifest = FederationManifest(
        graph_digest=graph_digest(graph),
        partition_digest=partition.digest(),
        region_of=list(partition.region_of),
        regions=entries,
        border_stops=border_stops,
        border_path=BORDER_FILENAME,
        border_digest=file_digest(border_file),
        dataset=dataset,
    )
    manifest.save(os.path.join(out_dir, MANIFEST_FILENAME))
    say(
        f"manifest: {manifest.num_regions} regions, "
        f"epoch {manifest.epoch}"
    )
    return manifest
