"""Deterministic region partitioning over the stop-adjacency graph.

The federation needs the timetable's stations split into ``k``
regions such that (a) regions are roughly balanced — each worker's
shard should cost about the same to build and hold — and (b) the *cut*
(connections whose endpoints live in different regions) is small,
because every cut connection's endpoints become border stops and the
border mini-index is quadratic in their number.

:func:`partition_graph` is a METIS-lite heuristic: seeded
farthest-first region seeds, greedy balanced region growing over the
connection-weighted stop adjacency, then boundary refinement passes
that move border stops across the cut while it shrinks.  Everything is
deterministic under ``seed`` — the same graph and seed always yield
the identical partition, which the manifest digests rely on.

Datasets whose station names carry an explicit region tag
(``"Name/r3/..."`` from the multi-region generator, ``"Name/c2/..."``
from the country generator) can skip the heuristic entirely:
:func:`region_map_from_names` recovers the intended regions from the
names.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.errors import FederationError
from repro.graph.timetable import TimetableGraph

#: Regions may exceed perfect balance ``n/k`` by this factor while
#: growing / refining (METIS' default imbalance tolerance is similar).
BALANCE_TOLERANCE = 1.3

#: Station-name segment marking an explicit region: ``/r<digits>/``
#: (multi-region generator) or ``/c<digits>/`` (country generator).
_REGION_TAG = re.compile(r"/(?:r|c)(\d+)/")


@dataclass(frozen=True)
class Partition:
    """A station → region assignment.

    Attributes:
        region_of: dense list mapping station id to region id.
        num_regions: number of regions (ids ``0..num_regions-1``).
    """

    region_of: Tuple[int, ...]
    num_regions: int
    #: Seed the heuristic ran under (-1 for explicit region maps).
    seed: int = -1

    def __post_init__(self) -> None:
        if self.num_regions < 1:
            raise FederationError(
                f"need at least one region: {self.num_regions}"
            )
        seen = set(self.region_of)
        for region in range(self.num_regions):
            if region not in seen:
                raise FederationError(f"region {region} is empty")
        for region in seen:
            if not 0 <= region < self.num_regions:
                raise FederationError(
                    f"region id {region} out of range "
                    f"[0, {self.num_regions})"
                )

    @property
    def n(self) -> int:
        return len(self.region_of)

    def regions(self) -> List[List[int]]:
        """Sorted station lists per region."""
        stops: List[List[int]] = [[] for _ in range(self.num_regions)]
        for station, region in enumerate(self.region_of):
            stops[region].append(station)
        return stops

    def sizes(self) -> List[int]:
        return [len(stops) for stops in self.regions()]

    def cut_connections(self, graph: TimetableGraph) -> List:
        """Connections whose endpoints lie in different regions."""
        self._check_graph(graph)
        region_of = self.region_of
        return [
            c for c in graph.connections
            if region_of[c.u] != region_of[c.v]
        ]

    def cut_size(self, graph: TimetableGraph) -> int:
        return len(self.cut_connections(graph))

    def border_stops(self, graph: TimetableGraph) -> List[int]:
        """Stations incident to a cut connection (sorted, global ids).

        These are the federation's shared hubs: every journey that
        changes region passes through one on the way out and one on
        the way in, so exact cross-region stitching only needs labels
        to/from this set.
        """
        self._check_graph(graph)
        region_of = self.region_of
        border = set()
        for c in graph.connections:
            if region_of[c.u] != region_of[c.v]:
                border.add(c.u)
                border.add(c.v)
        return sorted(border)

    def digest(self) -> str:
        """Hex digest of the assignment (pins manifests to it)."""
        h = hashlib.sha256()
        h.update(self.num_regions.to_bytes(8, "little"))
        for region in self.region_of:
            h.update(int(region).to_bytes(4, "little"))
        return h.hexdigest()

    def _check_graph(self, graph: TimetableGraph) -> None:
        if graph.n != self.n:
            raise FederationError(
                f"partition covers {self.n} stations but the graph "
                f"has {graph.n}"
            )


def partition_from_regions(
    region_of: List[int], seed: int = -1
) -> Partition:
    """Wrap an explicit station → region map (validated)."""
    if not region_of:
        raise FederationError("empty region map")
    return Partition(
        region_of=tuple(region_of),
        num_regions=max(region_of) + 1,
        seed=seed,
    )


def region_map_from_names(graph: TimetableGraph) -> Optional[Partition]:
    """Recover the dataset's intended regions from station names.

    Returns a :class:`Partition` when *every* station name carries a
    ``/r<i>/`` or ``/c<i>/`` tag (the multi-region and country
    generators emit these), ``None`` otherwise.  Tag values are
    renumbered densely in sorted order, so region ids are stable.
    """
    if graph.station_names is None:
        return None
    tags: List[int] = []
    for station in range(graph.n):
        match = _REGION_TAG.search(graph.station_name(station))
        if match is None:
            return None
        tags.append(int(match.group(1)))
    dense = {tag: i for i, tag in enumerate(sorted(set(tags)))}
    return partition_from_regions([dense[tag] for tag in tags])


# ----------------------------------------------------------------------
# METIS-lite heuristic
# ----------------------------------------------------------------------


def _adjacency(graph: TimetableGraph) -> List[Dict[int, int]]:
    """Symmetric connection-count weights between station pairs."""
    weights: List[Dict[int, int]] = [dict() for _ in range(graph.n)]
    for c in graph.connections:
        if c.u == c.v:
            continue
        weights[c.u][c.v] = weights[c.u].get(c.v, 0) + 1
        weights[c.v][c.u] = weights[c.v].get(c.u, 0) + 1
    return weights


def _farthest_first_seeds(
    adjacency: List[Dict[int, int]], k: int, rng: random.Random
) -> List[int]:
    """k seed stations, far apart in BFS hops (deterministic)."""
    n = len(adjacency)
    seeds = [rng.randrange(n)]
    # hops[v] = BFS distance to the nearest chosen seed.
    hops = _bfs_hops(adjacency, seeds[0])
    while len(seeds) < k:
        best = max(range(n), key=lambda v: (hops[v], -v))
        if best in seeds:  # graph smaller than k or fully covered
            remaining = [v for v in range(n) if v not in seeds]
            if not remaining:
                raise FederationError(
                    f"cannot pick {k} seeds from {n} stations"
                )
            best = remaining[0]
        seeds.append(best)
        for v, d in enumerate(_bfs_hops(adjacency, best)):
            if d < hops[v]:
                hops[v] = d
    return seeds


def _bfs_hops(adjacency: List[Dict[int, int]], source: int) -> List[int]:
    n = len(adjacency)
    dist = [n + 1] * n
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if dist[v] > dist[u] + 1:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def partition_graph(
    graph: TimetableGraph,
    k: int,
    seed: int = 0,
    refine_passes: int = 4,
    balance_tolerance: float = BALANCE_TOLERANCE,
) -> Partition:
    """Partition ``graph`` into ``k`` regions (METIS-lite heuristic).

    Three deterministic phases:

    1. **Seeds** — one random station, then farthest-first in BFS hops.
    2. **Growth** — multi-source best-first expansion: each region
       claims its most strongly connected unassigned neighbor, subject
       to a balance cap of ``tolerance * n/k`` stations.
    3. **Refinement** — Kernighan–Lin-style passes: move a border
       station to the neighboring region where it has strictly more
       connection weight, while the move keeps both regions within
       size bounds; repeat until no move improves the cut.

    Args:
        graph: the timetable graph.
        k: number of regions (``1 <= k <= graph.n``).
        seed: RNG seed; identical seeds yield identical partitions.
        refine_passes: maximum boundary refinement sweeps.
        balance_tolerance: region size cap as a multiple of ``n/k``.
    """
    n = graph.n
    if not 1 <= k <= n:
        raise FederationError(
            f"cannot cut {n} stations into {k} regions"
        )
    if k == 1:
        return Partition(region_of=(0,) * n, num_regions=1, seed=seed)

    adjacency = _adjacency(graph)
    rng = random.Random(seed)
    cap = max(2, int(balance_tolerance * n / k) + 1)
    region_of = [-1] * n
    sizes = [0] * k

    seeds = _farthest_first_seeds(adjacency, k, rng)
    heap: List[Tuple[int, int, int, int]] = []
    order = 0
    for region, station in enumerate(seeds):
        heappush(heap, (0, order, station, region))
        order += 1

    # Growth: pop the (strongest-attachment, oldest) frontier entry.
    # Priority is -weight so heavier attachments claim first.
    while heap:
        _, _, station, region = heappop(heap)
        if region_of[station] != -1 or sizes[region] >= cap:
            continue
        region_of[station] = region
        sizes[region] += 1
        for neighbor, weight in sorted(adjacency[station].items()):
            if region_of[neighbor] == -1:
                heappush(heap, (-weight, order, neighbor, region))
                order += 1

    # Disconnected leftovers (and cap overflow): smallest region wins.
    for station in range(n):
        if region_of[station] == -1:
            region = min(range(k), key=lambda r: (sizes[r], r))
            region_of[station] = region
            sizes[region] += 1

    _refine(adjacency, region_of, sizes, k, cap, refine_passes)
    return Partition(
        region_of=tuple(region_of), num_regions=k, seed=seed
    )


def _refine(
    adjacency: List[Dict[int, int]],
    region_of: List[int],
    sizes: List[int],
    k: int,
    cap: int,
    passes: int,
) -> None:
    """KL-lite boundary refinement (in place, deterministic order)."""
    n = len(adjacency)
    floor = 2 if n >= 2 * k else 1
    for _ in range(passes):
        moved = False
        for station in range(n):
            home = region_of[station]
            if sizes[home] <= floor:
                continue
            pull: Dict[int, int] = {}
            for neighbor, weight in adjacency[station].items():
                region = region_of[neighbor]
                pull[region] = pull.get(region, 0) + weight
            best_region, best_gain = home, 0
            for region in sorted(pull):
                if region == home or sizes[region] >= cap:
                    continue
                gain = pull[region] - pull.get(home, 0)
                if gain > best_gain:
                    best_region, best_gain = region, gain
            if best_region != home:
                region_of[station] = best_region
                sizes[home] -= 1
                sizes[best_region] += 1
                moved = True
        if not moved:
            return
