"""Federated serving: per-region workers behind a stitching router.

Process layout (one :class:`FederationSupervisor`):

* **K region workers** — forked children, one per region shard.  Each
  memory-maps *only its region's* index file plus the shared border
  index (per-worker RSS is bounded by shard + border, the point of
  federating), serves the full ``/v1`` query surface for queries whose
  endpoints both live in its region (including the self-stitch for
  intra-region journeys that detour through a neighbor — see
  :mod:`repro.federation.stitch`), and exposes the internal
  ``POST /fed/*`` seam primitives.
* **The router** — a thread-pool HTTP server in the supervisor
  process holding no labels at all, only the manifest's stop → region
  table.  An *intra-region* request is proxied whole to the owning
  worker: exactly one hop, never a fan-out.  A *cross-region* request
  is answered by chaining seam primitives across the two owning
  workers (``out`` on the source shard, ``close`` on the target shard,
  plus the mirrored pair for the canonical departure).  ``/v1/batch``
  splits its targets by region, reuses one ``out`` per remote region,
  and merges.

Workers keep the prefork contract from :mod:`repro.serving`: sockets
are bound by the supervisor before any fork (so a respawned worker
reuses its port), liveness is heartbeat rows in the shared scoreboard,
and a killed worker is respawned into the same slot with a bumped
generation.
"""

from __future__ import annotations

import http.client
import json
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.algorithms.profiles import ParetoProfile
from repro.core.order import graph_digest
from repro.errors import (
    FederationError,
    RequestValidationError,
    ServiceNotReady,
)
from repro.federation.manifest import FederationManifest
from repro.federation.stitch import FederatedPlanner, load_federation
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.resilience import FaultPlan, ResilienceConfig
from repro.serving.scoreboard import Scoreboard
from repro.serving.supervisor import ServingSupervisor
from repro.timeutil import INF, NEG_INF

#: Router → worker sub-request timeout (seconds).
SUBREQUEST_TIMEOUT_S = 30.0


class FederationWorkerRole:
    """Answers the internal ``POST /fed/*`` seam primitives.

    Attached to a worker's :class:`~repro.service.PlannerService` as
    ``service.fed``; calls arrive under the service lock with readiness
    already checked.  Bodies and responses are small JSON dicts — the
    station-keyed maps use string keys (JSON objects cannot key by
    int).
    """

    def __init__(self, planner: FederatedPlanner, region: int) -> None:
        self.planner = planner
        self.region = region

    def handle(self, subpath: str, body: dict):
        planner = self.planner
        if subpath == "/info":
            manifest = planner.manifest
            entry = manifest.region_entry(self.region)
            return {
                "region": self.region,
                "stations": len(entry.stops),
                "borders": len(
                    planner.borders_by_region.get(self.region, [])
                ),
                "epoch": manifest.epoch,
                "labels": entry.labels,
            }
        if subpath == "/out":
            t2 = planner.reach_out(
                _int_field(body, "u"),
                _int_field(body, "t"),
                _int_field(body, "target_region"),
            )
            return {"t2": {str(b2): arr for b2, arr in t2.items()}}
        if subpath == "/eap_close":
            arr = planner.eap_close(
                _int_field(body, "v"), _station_map(body, "t2")
            )
            return {"arr": None if arr >= INF else arr}
        if subpath == "/back":
            s1 = planner.reach_back(
                _int_field(body, "v"),
                _int_field(body, "t"),
                _int_field(body, "source_region"),
            )
            return {"s1": {str(b1): dep for b1, dep in s1.items()}}
        if subpath == "/ldp_close":
            dep = planner.ldp_close(
                _int_field(body, "u"), _station_map(body, "s1")
            )
            return {"dep": None if dep <= NEG_INF else dep}
        if subpath == "/close_many":
            t2 = _station_map(body, "t2")
            arrivals = {}
            for v in _int_list_field(body, "targets"):
                arr = planner.eap_close(v, t2)
                arrivals[str(v)] = None if arr >= INF else arr
            return {"arrivals": arrivals}
        if subpath == "/profile_out":
            candidates = planner.profile_out(
                _int_field(body, "u"),
                _int_field(body, "t"),
                _int_field(body, "t_end"),
                _int_field(body, "target_region"),
            )
            return {"candidates": [list(c) for c in candidates]}
        if subpath == "/profile_close":
            candidates = [
                (int(dep), int(b2), int(a2))
                for dep, b2, a2 in body.get("candidates", [])
            ]
            pairs = planner.profile_close(
                _int_field(body, "v"),
                _int_field(body, "t_end"),
                candidates,
            )
            return {"pairs": [list(p) for p in pairs]}
        if subpath == "/one_to_many":
            arrivals = planner.one_to_many(
                _int_field(body, "source"),
                _int_list_field(body, "targets"),
                _int_field(body, "t"),
            )
            return {
                "arrivals": {str(v): arr for v, arr in arrivals.items()}
            }
        raise RequestValidationError(
            f"unknown federation primitive: {subpath!r}",
            hint="expected one of /info /out /eap_close /back "
            "/ldp_close /close_many /profile_out /profile_close "
            "/one_to_many",
        )


def _station_map(body: dict, name: str) -> Dict[int, int]:
    """Parse a ``{station: time}`` JSON object field (string keys)."""
    value = body.get(name)
    if not isinstance(value, dict):
        raise RequestValidationError(
            f"body field {name!r} must be an object mapping station "
            f"ids to times, got {value!r}",
            field=name,
        )
    try:
        return {int(k): int(v) for k, v in value.items()}
    except (TypeError, ValueError):
        raise RequestValidationError(
            f"body field {name!r} must map integer station ids to "
            "integer times",
            field=name,
        ) from None


def _int_field(body: dict, name: str) -> int:
    from repro.service import _int_field as impl

    return impl(body, name)


def _int_list_field(body: dict, name: str) -> list:
    from repro.service import _int_list_field as impl

    return impl(body, name)


def _federation_worker_main(
    region: int,
    generation: int,
    sock: socket.socket,
    graph: TimetableGraph,
    manifest_path: str,
    scoreboard: Scoreboard,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    heartbeat_interval_s: float = 0.25,
    mmap: bool = True,
) -> None:
    """One region worker (runs in the forked child).

    Loads *only* this region's shard (memory-mapped) plus the border
    index, serves queries between stations of the region (the planner
    self-stitches detours), answers ``/fed/*`` seam primitives for the
    router, and heartbeats until SIGTERM.  The cache epoch folds in the
    manifest epoch and region id, so a rebuilt or re-partitioned
    federation can never resurrect stale cached answers.
    """
    from repro.service import PlannerService

    planner = load_federation(
        manifest_path, graph, regions=[region], mmap=mmap, verify=False
    )
    service = PlannerService(
        planner,
        resilience=resilience,
        fault_plan=fault_plan,
        worker_id=region,
        scoreboard=scoreboard,
        epoch=f"{planner.manifest.epoch}/r{region}",
    )
    service.generation = generation
    service.fed = FederationWorkerRole(planner, region)

    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: drain.set())

    service.start(sock=sock, warm=True)
    try:
        while not drain.wait(timeout=heartbeat_interval_s):
            service.publish_counters()
    except KeyboardInterrupt:
        return
    service.stop()
    service.publish_counters()


class FederationSupervisor(ServingSupervisor):
    """Per-region prefork workers behind a stitching router.

    The public port (returned by :meth:`start`) is the router's; the
    per-region worker ports are internal (``worker_ports``) but plain
    HTTP, which the equivalence tests use to query shards directly.
    """

    def __init__(
        self,
        graph: TimetableGraph,
        manifest_path: str,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval_s: float = 0.25,
        respawn: bool = True,
        respawn_backoff_s: float = 0.1,
        mmap: bool = True,
        verify: bool = True,
    ) -> None:
        manifest = FederationManifest.load(manifest_path)
        manifest.check_graph(graph_digest(graph))
        if verify:
            manifest.verify_files()

        def _no_factory():
            raise FederationError(
                "federation workers build their own planners; the "
                "shared factory must never be called"
            )

        super().__init__(
            planner_factory=_no_factory,
            workers=manifest.num_regions,
            resilience=resilience,
            fault_plan=fault_plan,
            host=host,
            port=port,
            heartbeat_interval_s=heartbeat_interval_s,
            respawn=respawn,
            respawn_backoff_s=respawn_backoff_s,
        )
        self.graph = graph
        self.manifest = manifest
        self.manifest_path = manifest_path
        self.mmap = mmap
        #: region → bound worker port (stable across respawns).
        self.worker_ports: Dict[int, int] = {}
        self._region_socks: Dict[int, socket.socket] = {}
        self._router: Optional[ThreadingHTTPServer] = None
        self._router_thread: Optional[threading.Thread] = None
        #: Router-side federation counters (served in /v1/metrics).
        self.router_stats = {
            "intra_proxied": 0,
            "cross_stitched": 0,
            "batch_requests": 0,
            "subrequests": 0,
        }
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle (overrides: K sockets + a router instead of one socket)
    # ------------------------------------------------------------------

    def start(self) -> int:
        """Bind one socket per region, fork the workers, start the
        monitor and the router; returns the router's port."""
        for region in range(self.manifest.num_regions):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, 0))
            sock.listen(128)
            sock.setblocking(False)
            self._region_socks[region] = sock
            self.worker_ports[region] = sock.getsockname()[1]
        for region in range(self.manifest.num_regions):
            self._spawn(region)
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True
        )
        self._monitor.start()
        self._router = ThreadingHTTPServer(
            (self.host, self.port), _make_router_handler(self)
        )
        self._router.daemon_threads = True
        self.port = self._router.server_address[1]
        self._router_thread = threading.Thread(
            target=self._router.serve_forever, daemon=True
        )
        self._router_thread.start()
        return self.port

    def stop(self) -> None:
        super().stop()
        self._close_router()

    def drain(self, grace_s: float = 5.0) -> bool:
        clean = super().drain(grace_s)
        self._close_router()
        return clean

    def _close_router(self) -> None:
        if self._router is not None:
            self._router.shutdown()
            self._router.server_close()
            self._router = None
        if self._router_thread is not None:
            self._router_thread.join(timeout=5)
            self._router_thread = None
        for sock in self._region_socks.values():
            sock.close()
        self._region_socks.clear()

    def _spawn(self, worker_id: int) -> None:
        self._generation += 1
        proc = self._ctx.Process(
            target=_federation_worker_main,
            args=(
                worker_id,
                self._generation,
                self._region_socks[worker_id],
                self.graph,
                self.manifest_path,
                self.scoreboard,
            ),
            kwargs={
                "resilience": self.resilience,
                "fault_plan": self.fault_plan,
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "mmap": self.mmap,
            },
            daemon=True,
            name=f"repro-fed-worker-r{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc

    # ------------------------------------------------------------------
    # Router helpers
    # ------------------------------------------------------------------

    def bump(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            self.router_stats[counter] += by

    def call_worker(self, region: int, path: str, body: dict) -> dict:
        """One POST sub-request to a region worker (internal seam)."""
        self.bump("subrequests")
        conn = http.client.HTTPConnection(
            self.host,
            self.worker_ports[region],
            timeout=SUBREQUEST_TIMEOUT_S,
        )
        try:
            payload = json.dumps(body)
            conn.request(
                "POST",
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            data = json.loads(raw) if raw else {}
            if response.status == 503:
                raise ServiceNotReady(
                    f"region {region} worker not ready: "
                    f"{data.get('error')}"
                )
            if response.status != 200:
                raise FederationError(
                    f"region {region} worker answered "
                    f"{response.status} for {path}: {data.get('error')}"
                )
            return data
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceNotReady(
                f"region {region} worker unreachable: {exc}"
            ) from exc
        finally:
            conn.close()

    def proxy(self, region: int, path: str) -> Tuple[int, bytes, str]:
        """Forward one GET verbatim to a region worker."""
        self.bump("subrequests")
        conn = http.client.HTTPConnection(
            self.host,
            self.worker_ports[region],
            timeout=SUBREQUEST_TIMEOUT_S,
        )
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return (
                response.status,
                response.read(),
                response.getheader("Content-Type", "application/json"),
            )
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceNotReady(
                f"region {region} worker unreachable: {exc}"
            ) from exc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Cross-region stitches (chains of seam sub-requests)
    # ------------------------------------------------------------------

    def cross_eap(self, u: int, v: int, t: int) -> Optional[dict]:
        region_u = self.manifest.stop_region(u)
        region_v = self.manifest.stop_region(v)
        out = self.call_worker(
            region_u, "/fed/out", {"u": u, "t": t, "target_region": region_v}
        )
        arr = self.call_worker(
            region_v, "/fed/eap_close", {"v": v, "t2": out["t2"]}
        )["arr"]
        if arr is None:
            return None
        back = self.call_worker(
            region_v,
            "/fed/back",
            {"v": v, "t": arr, "source_region": region_u},
        )
        dep = self.call_worker(
            region_u, "/fed/ldp_close", {"u": u, "s1": back["s1"]}
        )["dep"]
        return Journey(u, v, dep, arr).to_dict()

    def cross_ldp(self, u: int, v: int, t: int) -> Optional[dict]:
        region_u = self.manifest.stop_region(u)
        region_v = self.manifest.stop_region(v)
        back = self.call_worker(
            region_v, "/fed/back", {"v": v, "t": t, "source_region": region_u}
        )
        dep = self.call_worker(
            region_u, "/fed/ldp_close", {"u": u, "s1": back["s1"]}
        )["dep"]
        if dep is None:
            return None
        out = self.call_worker(
            region_u,
            "/fed/out",
            {"u": u, "t": dep, "target_region": region_v},
        )
        arr = self.call_worker(
            region_v, "/fed/eap_close", {"v": v, "t2": out["t2"]}
        )["arr"]
        return Journey(u, v, dep, arr).to_dict()

    def cross_profile(
        self, u: int, v: int, t: int, t_end: int
    ) -> List[List[int]]:
        region_u = self.manifest.stop_region(u)
        region_v = self.manifest.stop_region(v)
        out = self.call_worker(
            region_u,
            "/fed/profile_out",
            {"u": u, "t": t, "t_end": t_end, "target_region": region_v},
        )
        return self.call_worker(
            region_v,
            "/fed/profile_close",
            {"v": v, "t_end": t_end, "candidates": out["candidates"]},
        )["pairs"]

    def cross_sdp(
        self, u: int, v: int, t: int, t_end: int
    ) -> Optional[dict]:
        pairs = self.cross_profile(u, v, t, t_end)
        best = ParetoProfile(
            [(dep, arr) for dep, arr in pairs]
        ).best_duration(t, t_end)
        if best is None:
            return None
        dep, arr, _ = best
        return Journey(u, v, dep, arr).to_dict()

    def one_to_many(
        self, source: int, targets: List[int], t: int
    ) -> Dict[str, Optional[int]]:
        """Batched federated earliest arrivals, one ``out`` per remote
        region (string-keyed, matching JSON-serialized monolith
        bodies)."""
        region_u = self.manifest.stop_region(source)
        by_region: Dict[int, List[int]] = {}
        for v in targets:
            by_region.setdefault(self.manifest.stop_region(v), []).append(v)
        arrivals: Dict[str, Optional[int]] = {}
        own = by_region.pop(region_u, None)
        if own:
            data = self.call_worker(
                region_u,
                "/fed/one_to_many",
                {"source": source, "targets": own, "t": t},
            )
            arrivals.update(data["arrivals"])
        for region, stations in sorted(by_region.items()):
            out = self.call_worker(
                region_u,
                "/fed/out",
                {"u": source, "t": t, "target_region": region},
            )
            data = self.call_worker(
                region,
                "/fed/close_many",
                {"targets": stations, "t2": out["t2"]},
            )
            arrivals.update(data["arrivals"])
        return arrivals


def _make_router_handler(sup: FederationSupervisor):
    from repro.service import (
        _error_body,
        _int_param,
        _retry_after,
        _split_api_version,
    )

    manifest = sup.manifest
    graph = sup.graph
    config = sup.resilience or ResilienceConfig()

    class RouterHandler(BaseHTTPRequestHandler):
        def log_message(self, *_args) -> None:
            return

        def send_error(  # noqa: N802 (http.server API)
            self, code, message=None, explain=None
        ) -> None:
            if message is None:
                message = self.responses.get(code, ("error",))[0]
            self._send(code, _error_body(message))

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            params = {
                key: values[0]
                for key, values in parse_qs(parsed.query).items()
            }
            versioned, path = _split_api_version(parsed.path)
            self._dispatch(
                versioned, lambda: self._route_get(path, params, versioned)
            )

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            versioned, path = _split_api_version(parsed.path)
            self._dispatch(
                versioned, lambda: self._route_post(path, versioned)
            )

        def _dispatch(self, versioned: bool, route) -> None:
            started = time.perf_counter()
            try:
                body = route()
            except ServiceNotReady as exc:
                self._send(
                    503,
                    _error_body(exc),
                    headers={
                        "Retry-After": _retry_after(config.retry_after_s)
                    },
                )
                return
            except RequestValidationError as exc:
                self._send(400, _error_body(exc))
                return
            except (FederationError, KeyError, ValueError) as exc:
                self._send(400, _error_body(exc))
                return
            except Exception as exc:  # never kill the router thread
                self._send(
                    500,
                    _error_body(
                        f"internal error: {exc.__class__.__name__}: {exc}"
                    ),
                )
                return
            if body is None:
                self._send(404, _error_body(f"unknown path: {self.path}"))
                return
            if body is _PROXIED:
                return  # response already written verbatim
            headers = None
            if versioned:
                body = {
                    "data": body,
                    "meta": {
                        "elapsed_us": int(
                            (time.perf_counter() - started) * 1e6
                        ),
                        "degraded": False,
                        # -1 marks a router-assembled (cross-region)
                        # answer; proxied answers carry the region id.
                        "worker": -1,
                    },
                }
            else:
                headers = {"Deprecation": "true"}
            self._send(200, body, headers=headers)

        # --------------------------------------------------------------

        def _route_get(self, path: str, params: dict, versioned: bool):
            if path == "/healthz":
                return self._healthz()
            if path == "/healthz/live":
                return {"status": "alive"}
            if path == "/healthz/ready":
                rows = sup.scoreboard.workers()
                waiting = [
                    row["worker"] for row in rows if row["pid"] <= 0
                ]
                if waiting:
                    raise ServiceNotReady(
                        f"region workers {waiting} not ready"
                    )
                return {"ready": True}
            if path == "/metrics":
                return self._metrics()
            if path == "/stations":
                return {
                    "stations": [
                        {"id": s, "name": graph.station_name(s)}
                        for s in range(graph.n)
                    ]
                }
            if path in ("/eap", "/ldp"):
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                region_u = manifest.stop_region(u)
                if region_u == manifest.stop_region(v):
                    return self._proxy_intra(region_u)
                sup.bump("cross_stitched")
                journey = (
                    sup.cross_eap(u, v, t)
                    if path == "/eap"
                    else sup.cross_ldp(u, v, t)
                )
                return {"journey": journey}
            if path in ("/sdp", "/profile"):
                u = _int_param(params, "from")
                v = _int_param(params, "to")
                t = _int_param(params, "t")
                t_end = _int_param(params, "t_end")
                region_u = manifest.stop_region(u)
                if region_u == manifest.stop_region(v):
                    return self._proxy_intra(region_u)
                sup.bump("cross_stitched")
                if path == "/sdp":
                    return {"journey": sup.cross_sdp(u, v, t, t_end)}
                return {"pairs": sup.cross_profile(u, v, t, t_end)}
            return None

        def _route_post(self, path: str, versioned: bool):
            if path != "/batch" or not versioned:
                return None
            raw_length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(raw_length) if raw_length else b""
            try:
                body = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ValueError(f"malformed JSON body: {exc}") from exc
            if not isinstance(body, dict):
                raise ValueError("JSON body must be an object")
            return self._batch(body)

        def _proxy_intra(self, region: int):
            """Forward the original request whole to the owning worker
            — the single-hop intra-region path."""
            sup.bump("intra_proxied")
            status, payload, content_type = sup.proxy(region, self.path)
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            try:
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass
            return _PROXIED

        def _healthz(self) -> dict:
            rows = {
                row["worker"]: row for row in sup.scoreboard.workers()
            }
            borders = manifest.borders_by_region()
            shards = []
            for entry in manifest.regions:
                row = rows.get(entry.region, {})
                shards.append(
                    {
                        "region": entry.region,
                        "stations": len(entry.stops),
                        "borders": len(borders.get(entry.region, [])),
                        "labels": entry.labels,
                        "port": sup.worker_ports.get(entry.region),
                        "pid": row.get("pid", 0),
                        "generation": row.get("generation", 0),
                        "alive": row.get("alive", False),
                    }
                )
            return {
                "status": "ok",
                "planner": "TTL-fed",
                "federation": True,
                "stations": graph.n,
                "regions": manifest.num_regions,
                "epoch": manifest.epoch,
                "border_stops": len(manifest.border_stops),
                "ready": all(s["pid"] > 0 for s in shards),
                "shards": shards,
            }

        def _metrics(self) -> dict:
            with sup._stats_lock:
                router = dict(sup.router_stats)
            return {
                "planner": "TTL-fed",
                "federation": {
                    "regions": manifest.num_regions,
                    "epoch": manifest.epoch,
                    "router": router,
                    "respawns": sup.respawns,
                },
                "cluster": {
                    "workers": sup.scoreboard.workers(),
                    "totals": sup.scoreboard.totals(),
                },
            }

        def _batch(self, body: dict):
            sup.bump("batch_requests")
            kind = body.get("kind")
            if kind not in ("one_to_many", "matrix", "isochrone"):
                raise RequestValidationError(
                    "body field 'kind' must be one of 'one_to_many', "
                    f"'matrix', 'isochrone', got {kind!r}",
                    field="kind",
                )
            t = _int_field(body, "t")
            cap = config.max_batch_pairs
            if kind == "one_to_many":
                source = _int_field(body, "source")
                targets = _int_list_field(body, "targets")
                if len(targets) > cap:
                    raise RequestValidationError(
                        f"{len(targets)} targets exceed the batch cap "
                        f"of {cap}",
                        field="targets",
                    )
                return {
                    "kind": kind,
                    "source": source,
                    "t": t,
                    "arrivals": sup.one_to_many(source, targets, t),
                }
            if kind == "matrix":
                sources = _int_list_field(body, "sources")
                targets = _int_list_field(body, "targets")
                if len(sources) * len(targets) > cap:
                    raise RequestValidationError(
                        f"{len(sources)}x{len(targets)} matrix exceeds "
                        f"the batch cap of {cap} pairs",
                        field="sources",
                    )
                matrix = {
                    str(source): sup.one_to_many(source, targets, t)
                    for source in sources
                }
                return {"kind": kind, "t": t, "matrix": matrix}
            # isochrone
            source = _int_field(body, "source")
            budget = _int_field(body, "budget")
            if graph.n > cap:
                raise RequestValidationError(
                    f"an isochrone sweeps all {graph.n} stations, "
                    f"exceeding the batch cap of {cap}",
                    field="kind",
                )
            arrivals = sup.one_to_many(source, list(range(graph.n)), t)
            reachable = sorted(
                (arr, int(station))
                for station, arr in arrivals.items()
                if arr is not None and arr - t <= budget
            )
            return {
                "kind": kind,
                "source": source,
                "t": t,
                "budget": budget,
                "stations": [station for _, station in reachable],
            }

        def _send(
            self,
            status: int,
            body: dict,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            try:
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                if headers:
                    for key, value in headers.items():
                        self.send_header(key, value)
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass

    return RouterHandler


#: Sentinel: the handler already streamed a proxied response.
_PROXIED = object()
