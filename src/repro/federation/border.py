"""The border mini-index: exact Pareto profiles between border stops.

Cross-region stitching decomposes any region-changing journey at the
tail of its first cut connection (``b1``) and the head of its last
(``b2``) — both *border stops*.  The section between them may wander
the whole network, so the federation keeps one small shared index of
exact **full-network** Pareto ``(dep, arr)`` profiles for every
ordered border pair.  With :class:`~repro.algorithms.profiles`
semantics, those staircases answer the three primitive questions the
seam needs — earliest arrival, latest departure, and the profile
itself — each in one bisect.

Construction runs one temporal Dijkstra per (border stop, departure
time) — the :func:`~repro.core.profile_queries.oracle_profile` sweep,
amortized one-to-all over every other border stop.  Sweeping *all*
departure times and Pareto-filtering yields pairs whose departures are
the journeys' actual departures (a pair whose query time undercuts its
journey's real departure is dominated by the real one), which is what
makes stitched profile answers byte-identical to the monolith's.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.profiles import ParetoProfile
from repro.algorithms.temporal_dijkstra import earliest_arrival_search
from repro.errors import FederationError
from repro.graph.timetable import TimetableGraph
from repro.timeutil import INF, NEG_INF

#: Serialized format tag (inside the JSON payload).
BORDER_MAGIC = "TTLBORDER01"


class BorderIndex:
    """Pareto ``(dep, arr)`` profiles between ordered border pairs."""

    def __init__(
        self,
        stops: Sequence[int],
        profiles: Dict[Tuple[int, int], List[Tuple[int, int]]],
    ) -> None:
        self.stops: List[int] = sorted(stops)
        self._stop_set = set(self.stops)
        for (b1, b2), pairs in profiles.items():
            if b1 not in self._stop_set or b2 not in self._stop_set:
                raise FederationError(
                    f"border profile {b1}->{b2} references a stop "
                    "outside the border set"
                )
            for i in range(1, len(pairs)):
                if not (
                    pairs[i - 1][0] < pairs[i][0]
                    and pairs[i - 1][1] < pairs[i][1]
                ):
                    raise FederationError(
                        f"border profile {b1}->{b2} is not a strictly "
                        "increasing Pareto staircase"
                    )
        self._profiles = {
            pair: ParetoProfile(pairs) for pair, pairs in profiles.items()
        }

    # ------------------------------------------------------------------
    # Queries (the hub-label join primitives at the seam)
    # ------------------------------------------------------------------

    def eap(self, b1: int, b2: int, t: int) -> int:
        """Earliest arrival at ``b2`` leaving ``b1`` no sooner than
        ``t`` (``INF`` when infeasible); exact over the full network."""
        profile = self._profiles.get((b1, b2))
        return profile.eat(t) if profile is not None else INF

    def ldp(self, b1: int, b2: int, t: int) -> int:
        """Latest departure from ``b1`` arriving ``b2`` no later than
        ``t`` (``NEG_INF`` when infeasible)."""
        profile = self._profiles.get((b1, b2))
        return profile.ldt(t) if profile is not None else NEG_INF

    def pairs(
        self, b1: int, b2: int, t: int = NEG_INF, t_end: int = INF
    ) -> List[Tuple[int, int]]:
        """Pareto pairs ``b1 -> b2`` with departures inside the window."""
        profile = self._profiles.get((b1, b2))
        if profile is None:
            return []
        return [
            (dep, arr)
            for dep, arr in profile
            if t <= dep <= t_end
        ]

    # ------------------------------------------------------------------
    # Introspection / serialization
    # ------------------------------------------------------------------

    @property
    def num_pairs(self) -> int:
        return sum(len(p.deps) for p in self._profiles.values())

    def nbytes(self) -> int:
        """Retained size estimate (two int64 per pair + pair keys)."""
        return self.num_pairs * 16 + len(self._profiles) * 16

    def to_json(self) -> str:
        payload = {
            "magic": BORDER_MAGIC,
            "stops": self.stops,
            "profiles": [
                [b1, b2, [[dep, arr] for dep, arr in profile]]
                for (b1, b2), profile in sorted(self._profiles.items())
            ],
        }
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "BorderIndex":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FederationError(
                f"malformed border index JSON: {exc}"
            ) from exc
        if payload.get("magic") != BORDER_MAGIC:
            raise FederationError(
                f"not a border index (magic {payload.get('magic')!r}, "
                f"want {BORDER_MAGIC!r})"
            )
        profiles = {
            (b1, b2): [(dep, arr) for dep, arr in pairs]
            for b1, b2, pairs in payload["profiles"]
        }
        return cls(payload["stops"], profiles)

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def build_border_index(
    graph: TimetableGraph,
    stops: Sequence[int],
    progress: Optional[callable] = None,
) -> BorderIndex:
    """Exact full-network border profiles by departure-time sweep.

    For each border stop ``b1`` and each distinct departure time ``d``
    at ``b1``, one one-to-all temporal Dijkstra yields the earliest
    arrival at every other border stop; Pareto-filtering the
    ``(d, arrival)`` pairs per ordered pair gives the true profile
    staircases (see the module docstring for why the surviving
    departures are actual departures).
    """
    border = sorted(set(stops))
    for b in border:
        if not 0 <= b < graph.n:
            raise FederationError(f"border stop {b} not in graph")
    profiles: Dict[Tuple[int, int], ParetoProfile] = {}
    for i, b1 in enumerate(border):
        if progress is not None:
            progress(i, len(border))
        for dep in graph.departure_times(b1):
            eat, _ = earliest_arrival_search(graph, b1, dep)
            for b2 in border:
                if b2 == b1 or eat[b2] >= INF:
                    continue
                profile = profiles.get((b1, b2))
                if profile is None:
                    profile = profiles[(b1, b2)] = ParetoProfile()
                profile.add(dep, eat[b2])
    return BorderIndex(
        border,
        {
            pair: list(profile)
            for pair, profile in profiles.items()
        },
    )
