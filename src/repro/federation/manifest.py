"""The ``TTLFED01`` federation manifest.

One JSON file ties a federation directory together:

* the **graph digest** (pins the timetable the shards were built for),
* the **partition digest** and the full stop → region routing table,
* one **region entry** per shard: its global stop list, index file
  name, and file digest,
* the **border-hub set** with its mini-index file name and digest,
* the **epoch** — a digest over all of the above that keys answer
  caches, so a re-partition or region rebuild can never serve an
  answer cached against a stale layout.

Everything is content-addressed: ``verify_files`` re-hashes the shard
and border files, and loading a shard against the wrong subgraph
fails the same way a monolithic index load would.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.serialize import atomic_write
from repro.errors import FederationError

FEDERATION_MAGIC = "TTLFED01"


def file_digest(path: str) -> str:
    """sha256 of a file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class RegionEntry:
    """One region shard in the manifest."""

    region: int
    #: Sorted global station ids; index ``i`` is the shard's local id.
    stops: List[int]
    #: Shard file name, relative to the manifest directory.
    path: str
    #: sha256 of the shard file.
    digest: str
    labels: int

    def to_dict(self) -> dict:
        return {
            "region": self.region,
            "stops": self.stops,
            "path": self.path,
            "digest": self.digest,
            "labels": self.labels,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionEntry":
        return cls(
            region=data["region"],
            stops=list(data["stops"]),
            path=data["path"],
            digest=data["digest"],
            labels=data["labels"],
        )


@dataclass
class FederationManifest:
    """The parsed manifest (see the module docstring)."""

    graph_digest: str
    partition_digest: str
    region_of: List[int]
    regions: List[RegionEntry]
    border_stops: List[int]
    border_path: str
    border_digest: str
    #: Optional provenance: {"name", "scale", "seed"} of the dataset.
    dataset: Optional[dict] = None
    #: Directory the manifest was loaded from (None until saved/loaded).
    directory: Optional[str] = None

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def epoch(self) -> str:
        """Cache-key fingerprint of the whole federation layout."""
        h = hashlib.sha256()
        h.update(FEDERATION_MAGIC.encode())
        h.update(self.graph_digest.encode())
        h.update(self.partition_digest.encode())
        for entry in self.regions:
            h.update(entry.digest.encode())
        h.update(self.border_digest.encode())
        return h.hexdigest()[:16]

    def stop_region(self, station: int) -> int:
        """Region owning ``station`` (the routing table lookup)."""
        if not 0 <= station < len(self.region_of):
            raise FederationError(
                f"station {station} not in the federated network "
                f"(0..{len(self.region_of) - 1})"
            )
        return self.region_of[station]

    def region_entry(self, region: int) -> RegionEntry:
        if not 0 <= region < self.num_regions:
            raise FederationError(f"unknown region: {region}")
        return self.regions[region]

    def borders_by_region(self) -> Dict[int, List[int]]:
        """Border stops grouped by owning region (sorted)."""
        grouped: Dict[int, List[int]] = {
            r: [] for r in range(self.num_regions)
        }
        for stop in self.border_stops:
            grouped[self.stop_region(stop)].append(stop)
        return grouped

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "magic": FEDERATION_MAGIC,
            "graph_digest": self.graph_digest,
            "partition_digest": self.partition_digest,
            "num_regions": self.num_regions,
            "region_of": self.region_of,
            "regions": [entry.to_dict() for entry in self.regions],
            "border_stops": self.border_stops,
            "border_path": self.border_path,
            "border_digest": self.border_digest,
            "epoch": self.epoch,
        }
        if self.dataset is not None:
            data["dataset"] = self.dataset
        return data

    def save(self, path: str) -> None:
        payload = json.dumps(self.to_dict(), indent=2).encode()
        with atomic_write(path) as fh:
            fh.write(payload + b"\n")
        self.directory = os.path.dirname(os.path.abspath(path))

    @classmethod
    def load(cls, path: str) -> "FederationManifest":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise FederationError(
                f"cannot read federation manifest {path!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise FederationError(
                f"malformed federation manifest {path!r}: {exc}"
            ) from exc
        if data.get("magic") != FEDERATION_MAGIC:
            raise FederationError(
                f"{path!r} is not a federation manifest (magic "
                f"{data.get('magic')!r}, want {FEDERATION_MAGIC!r})"
            )
        manifest = cls(
            graph_digest=data["graph_digest"],
            partition_digest=data["partition_digest"],
            region_of=list(data["region_of"]),
            regions=[
                RegionEntry.from_dict(entry) for entry in data["regions"]
            ],
            border_stops=list(data["border_stops"]),
            border_path=data["border_path"],
            border_digest=data["border_digest"],
            dataset=data.get("dataset"),
            directory=os.path.dirname(os.path.abspath(path)),
        )
        recorded = data.get("epoch")
        if recorded is not None and recorded != manifest.epoch:
            raise FederationError(
                f"manifest epoch mismatch in {path!r}: recorded "
                f"{recorded}, derived {manifest.epoch} (edited file?)"
            )
        return manifest

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def resolve(self, relative: str) -> str:
        if self.directory is None:
            raise FederationError(
                "manifest has no directory (save or load it first)"
            )
        return os.path.join(self.directory, relative)

    def verify_files(self) -> None:
        """Re-hash every shard + the border index against the manifest.

        Raises :class:`FederationError` on the first mismatch — the
        federation equivalent of the monolithic loader's digest check.
        """
        for entry in self.regions:
            path = self.resolve(entry.path)
            try:
                actual = file_digest(path)
            except OSError as exc:
                raise FederationError(
                    f"region {entry.region} shard missing: {exc}"
                ) from exc
            if actual != entry.digest:
                raise FederationError(
                    f"region {entry.region} shard {entry.path!r} digest "
                    f"mismatch: manifest {entry.digest[:12]}..., file "
                    f"{actual[:12]}..."
                )
        try:
            actual = file_digest(self.resolve(self.border_path))
        except OSError as exc:
            raise FederationError(
                f"border index missing: {exc}"
            ) from exc
        if actual != self.border_digest:
            raise FederationError(
                f"border index {self.border_path!r} digest mismatch: "
                f"manifest {self.border_digest[:12]}..., file "
                f"{actual[:12]}..."
            )

    def check_graph(self, graph_digest: str) -> None:
        if graph_digest != self.graph_digest:
            raise FederationError(
                "federation manifest was built for a different "
                f"timetable (manifest graph {self.graph_digest[:12]}..., "
                f"got {graph_digest[:12]}...); rebuild with "
                "'repro-ttl build NAME DIR --regions K'"
            )
