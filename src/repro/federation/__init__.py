"""Region-sharded federation of TTL indexes.

One monolithic index serves one city; the federation subsystem turns a
timetable into a set of *region shards* plus a small shared *border
index*, so a country-scale network can be served by workers that each
hold only their region's labels:

* :mod:`repro.federation.partition` — deterministic, seedable
  METIS-lite min-cut partitioning over the stop-adjacency graph, plus
  explicit region maps derived from dataset station names.
* :mod:`repro.federation.border` — the border mini-index: exact
  full-network Pareto ``(dep, arr)`` profiles between every ordered
  pair of border stops.
* :mod:`repro.federation.manifest` — the ``TTLFED01`` manifest tying
  region shard files, digests, the stop→region routing table, and the
  border index together.
* :mod:`repro.federation.build` — per-region index builds (through the
  :mod:`repro.buildfarm` pipeline) emitting a manifest directory.
* :mod:`repro.federation.stitch` — :class:`FederatedPlanner`: exact
  EAP/LDP/profile answers by the hub-label join
  ``local-labels ⋈ border-index ⋈ remote-labels``.
* :mod:`repro.federation.serve` — the federated serving mode: one
  router process in front of per-region workers that mmap only their
  shard plus the border index.

See ``docs/federation.md`` for the algebra and the exactness argument.
"""

from repro.federation.border import BorderIndex, build_border_index
from repro.federation.build import build_federation
from repro.federation.manifest import (
    FEDERATION_MAGIC,
    FederationManifest,
    RegionEntry,
)
from repro.federation.partition import (
    Partition,
    partition_from_regions,
    partition_graph,
    region_map_from_names,
)
from repro.federation.stitch import (
    FederatedPlanner,
    RegionShard,
    load_federation,
)

__all__ = [
    "BorderIndex",
    "build_border_index",
    "build_federation",
    "FEDERATION_MAGIC",
    "FederationManifest",
    "RegionEntry",
    "Partition",
    "partition_from_regions",
    "partition_graph",
    "region_map_from_names",
    "FederatedPlanner",
    "RegionShard",
    "load_federation",
]
