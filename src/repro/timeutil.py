"""Time representation helpers.

All timestamps in this library are **integer seconds since midnight of
the service day**.  A value may exceed 24h (86 400 s) when a graph has
been extended with the following day's timetable (Section 8 of the
paper), so no modular arithmetic is ever applied to stored times.

Two sentinel values bound the timeline:

* :data:`NEG_INF` — "earlier than any timetable event"; used as the
  starting timestamp of an unconstrained LDP query.
* :data:`INF` — "later than any timetable event"; used as the ending
  timestamp of an unconstrained EAP query and as the initial earliest
  arrival time in Dijkstra-style searches.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400

#: Sentinel: later than every valid timestamp.
INF: int = 2**62

#: Sentinel: earlier than every valid timestamp.
NEG_INF: int = -(2**62)


def hms(hour: int, minute: int = 0, second: int = 0) -> int:
    """Return seconds-since-midnight for ``hour:minute:second``.

    Hours may exceed 23 to express times on the following service day
    (for instance ``hms(25, 30)`` is 1:30 am the next day), matching
    common GTFS practice.

    >>> hms(8, 30)
    30600
    >>> hms(25)
    90000
    """
    if not 0 <= minute < 60:
        raise ValueError(f"minute out of range: {minute}")
    if not 0 <= second < 60:
        raise ValueError(f"second out of range: {second}")
    if hour < 0:
        raise ValueError(f"hour must be non-negative: {hour}")
    return hour * SECONDS_PER_HOUR + minute * SECONDS_PER_MINUTE + second


def format_time(t: int) -> str:
    """Render a timestamp as ``HH:MM:SS`` (hours may exceed 23).

    The sentinels render as ``-inf`` / ``+inf``.

    >>> format_time(30600)
    '08:30:00'
    """
    if t >= INF:
        return "+inf"
    if t <= NEG_INF:
        return "-inf"
    sign = ""
    if t < 0:
        sign = "-"
        t = -t
    hours, rem = divmod(t, SECONDS_PER_HOUR)
    minutes, seconds = divmod(rem, SECONDS_PER_MINUTE)
    return f"{sign}{hours:02d}:{minutes:02d}:{seconds:02d}"


def format_duration(seconds: int) -> str:
    """Render a duration as a compact human-readable string.

    >>> format_duration(3900)
    '1h05m'
    >>> format_duration(45)
    '45s'
    """
    if seconds >= INF:
        return "inf"
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    hours, rem = divmod(seconds, SECONDS_PER_HOUR)
    minutes, secs = divmod(rem, SECONDS_PER_MINUTE)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        if secs:
            return f"{minutes}m{secs:02d}s"
        return f"{minutes}m"
    return f"{secs}s"


def parse_time(text: str) -> int:
    """Parse ``HH:MM`` or ``HH:MM:SS`` into seconds since midnight.

    >>> parse_time("08:30")
    30600
    """
    parts = text.strip().split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"cannot parse time: {text!r}")
    try:
        numbers = [int(p) for p in parts]
    except ValueError as exc:
        raise ValueError(f"cannot parse time: {text!r}") from exc
    if len(numbers) == 2:
        numbers.append(0)
    return hms(*numbers)
