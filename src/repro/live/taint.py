"""Label-safety analysis: which TTL labels survive a patch-set.

A label stands for one canonical path.  The path is *tainted* when it
uses a connection the current patch-set removed or retimed — serving
it from the static index would hand out a journey that no longer runs.
The analyzer decides taint from the data each label already carries
(Definition 7):

* ``trip`` not ``None`` — the whole canonical path rides one vehicle,
  so it is tainted iff the patched portion of that trip intersects the
  label's ``[dep, arr]`` window;
* otherwise the path transfers and splits at ``pivot`` into two child
  labels (Lemma 4), which are resolved through the index's O(1)
  lookup tables and checked recursively;
* a child that the index tie-pruned cannot be certified and is treated
  as tainted (the engine then falls back — conservative, never wrong).

Results are memoized on the label identity ``(src, dst, dep)`` so the
amortized cost per query is a handful of dictionary hits.  Taint only
ever *over*-approximates: a clean verdict is a proof that the unfolded
path exists verbatim in the live schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.index import TTLIndex
from repro.core.sketch import Sketch
from repro.live.overlay import PatchSet


@dataclass(frozen=True)
class TaintReport:
    """Index-wide taint statistics (observability / benchmarks)."""

    num_labels: int
    num_tainted: int

    @property
    def fraction(self) -> float:
        """Share of labels invalidated by the patch-set."""
        return self.num_tainted / self.num_labels if self.num_labels else 0.0


class TaintAnalyzer:
    """Decides, per label / sketch, whether the static index answer
    is still valid under ``patch``."""

    def __init__(self, index: TTLIndex, patch: PatchSet) -> None:
        self.index = index
        self.patch = patch
        #: (src, dst, dep) -> taint verdict; the key is unique because
        #: canonical paths of a pair have distinct departures.  The
        #: memo is valid ONLY against ``patch``: verdicts must never be
        #: carried to another patch-set generation (the engine builds a
        #: fresh analyzer on every overlay swap and asserts as much).
        self._memo: Dict[Tuple[int, int, int], bool] = {}

    @property
    def memo_size(self) -> int:
        """Memoized verdict count (generation-leak regression tests)."""
        return len(self._memo)

    # ------------------------------------------------------------------
    # Core decision
    # ------------------------------------------------------------------

    def trip_segment_tainted(self, trip: int, dep: int, arr: int) -> bool:
        """True when trip ``trip`` lost/retimed a connection inside the
        ``[dep, arr]`` ride window."""
        removed = self.patch.removed_by_trip.get(trip)
        if not removed:
            return False
        for conn in removed:
            if conn.dep >= dep and conn.arr <= arr:
                return True
        return False

    def segment_tainted(
        self,
        src: int,
        dst: int,
        dep: int,
        arr: int,
        trip: Optional[int],
        pivot: Optional[int],
    ) -> bool:
        """Taint verdict for one label / canonical path segment."""
        key = (src, dst, dep)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if trip is not None:
            # Single-vehicle path: only that trip's patched window matters.
            verdict = self.trip_segment_tainted(trip, dep, arr)
        elif pivot is None:
            # Cannot happen for well-formed labels (a single connection
            # always has a trip); refuse to certify.
            verdict = True
        else:
            left = self.index.lookup_by_dep(src, pivot, dep)
            right = self.index.lookup_by_arr(pivot, dst, arr)
            if left is None or right is None:
                # Tie-pruned child: PathUnfold would fall back to a
                # search on the *base* graph, which we cannot certify.
                verdict = True
            else:
                l_dep, l_arr, l_trip, l_pivot = left
                r_dep, r_arr, r_trip, r_pivot = right
                verdict = self.segment_tainted(
                    src, pivot, l_dep, l_arr, l_trip, l_pivot
                ) or self.segment_tainted(
                    pivot, dst, r_dep, r_arr, r_trip, r_pivot
                )
        self._memo[key] = verdict
        return verdict

    def sketch_tainted(self, sketch: Sketch) -> bool:
        """Taint verdict for a refined sketch (1-2 label segments)."""
        for segment in (sketch.first, sketch.second):
            if segment is not None and self.segment_tainted(*segment):
                return True
        return False

    # ------------------------------------------------------------------
    # Node / index level views
    # ------------------------------------------------------------------

    def tainted_hubs_out(self, node: int) -> frozenset:
        """Hubs of ``node``'s out-labels with >= 1 tainted label."""
        hubs = set()
        for group in self.index.out_groups[node]:
            for i in range(len(group)):
                if self.segment_tainted(
                    node,
                    group.hub,
                    group.deps[i],
                    group.arrs[i],
                    group.trips[i],
                    group.pivots[i],
                ):
                    hubs.add(group.hub)
                    break
        return frozenset(hubs)

    def tainted_hubs_in(self, node: int) -> frozenset:
        """Hubs of ``node``'s in-labels with >= 1 tainted label."""
        hubs = set()
        for group in self.index.in_groups[node]:
            for i in range(len(group)):
                if self.segment_tainted(
                    group.hub,
                    node,
                    group.deps[i],
                    group.arrs[i],
                    group.trips[i],
                    group.pivots[i],
                ):
                    hubs.add(group.hub)
                    break
        return frozenset(hubs)

    def report(self) -> TaintReport:
        """Walk the whole index and count tainted labels."""
        total = tainted = 0
        for node in range(self.index.graph.n):
            for direction, groups in (
                ("out", self.index.out_groups[node]),
                ("in", self.index.in_groups[node]),
            ):
                for group in groups:
                    for i in range(len(group)):
                        total += 1
                        if direction == "out":
                            src, dst = node, group.hub
                        else:
                            src, dst = group.hub, node
                        if self.segment_tainted(
                            src,
                            dst,
                            group.deps[i],
                            group.arrs[i],
                            group.trips[i],
                            group.pivots[i],
                        ):
                            tainted += 1
        return TaintReport(num_labels=total, num_tainted=tainted)
