"""The hybrid live query engine.

:class:`LiveOverlayEngine` keeps the sealed TTL index untouched and
answers each query with a two-stage safety argument:

1. **Feasibility** — the static answer's label segments are checked by
   the :class:`~repro.live.taint.TaintAnalyzer`; a clean verdict proves
   the unfolded path uses no removed/retimed connection, i.e. it still
   runs under the live schedule.
2. **Optimality** — any live journey that *beats* the static optimum
   must ride at least one *added* connection (live minus additions is a
   subset of the base timetable, over which the index is exact).  The
   engine therefore scans the few added connections inside the query's
   time window and bounds, optimistically (static label lookups give
   lower bounds on live travel times because the base timetable is a
   superset of the live one minus additions), the best journey that
   could route through them — chaining through multiple additions is
   covered by a small fixpoint.  If even the optimistic bound cannot
   beat the static answer, the fast path is safe.

When either stage fails, the query falls back to temporal Dijkstra on
the :class:`~repro.live.overlay.OverlayTimetable`, so every answer —
fast path or fallback — is exact for the live schedule.  Per-query
counters record how often each path is taken; the
``bench_live_overlay`` benchmark reports the resulting fast-path rate
against the full re-index baseline.

Patch swaps build a fresh immutable snapshot (patch-set, overlay,
taint analyzer, fallback planner) under a lock and publish it with one
reference assignment, so queries already in flight keep reading a
consistent snapshot.
"""

from __future__ import annotations

import threading
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.algorithms.temporal_dijkstra import DijkstraPlanner
from repro.core.build import OrderSpec
from repro.core.index import TTLIndex
from repro.core.queries import TTLPlanner
from repro.core.sketch import (
    best_eap_sketch,
    best_ldp_sketch,
    best_sdp_sketch,
)
from repro.core.unfold import sketch_to_journey
from repro.errors import LiveEventError
from repro.graph.timetable import TimetableGraph
from repro.journey import Journey
from repro.live.events import LiveEvent
from repro.live.overlay import OverlayTimetable, PatchSet
from repro.live.taint import TaintAnalyzer, TaintReport
from repro.planner import RoutePlanner
from repro.timeutil import INF, NEG_INF


class LiveQueryStats:
    """Counters for the engine's per-query routing decisions."""

    __slots__ = (
        "queries",
        "fast_path",
        "fallback_taint",
        "fallback_improvement",
        "fallback_flood",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.fast_path = 0
        #: Static answer used a patched connection.
        self.fallback_taint = 0
        #: An added connection could beat the static answer.
        self.fallback_improvement = 0
        #: Too many candidate additions to analyze; gave up early.
        self.fallback_flood = 0

    @property
    def fallbacks(self) -> int:
        """Total queries answered by search on the overlay."""
        return (
            self.fallback_taint
            + self.fallback_improvement
            + self.fallback_flood
        )

    @property
    def fast_path_rate(self) -> float:
        """Share of queries served from the untouched TTL index."""
        return self.fast_path / self.queries if self.queries else 1.0

    def snapshot(self) -> dict:
        """JSON-safe counter dump (served by ``/live/stats``)."""
        return {
            "queries": self.queries,
            "fast_path": self.fast_path,
            "fallback_taint": self.fallback_taint,
            "fallback_improvement": self.fallback_improvement,
            "fallback_flood": self.fallback_flood,
            "fast_path_rate": self.fast_path_rate,
        }

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__slots__:
            setattr(self, name, 0)


class _LiveState(NamedTuple):
    """One immutable published snapshot of the live schedule."""

    generation: int
    patch: PatchSet
    overlay: OverlayTimetable
    taint: TaintAnalyzer
    fallback: DijkstraPlanner


class LiveOverlayEngine(RoutePlanner):
    """Delay/cancellation-aware planner over a frozen TTL index."""

    name = "Live-TTL"

    def __init__(
        self,
        graph: TimetableGraph,
        order: OrderSpec = "hub",
        index: Optional[TTLIndex] = None,
        now: int = 0,
        max_candidates: int = 32,
    ) -> None:
        """Create the engine.

        Args:
            graph: the base (published) timetable.
            order: node-order specification for index construction.
            index: adopt a pre-built index instead of building one.
            now: initial engine clock (event visibility).
            max_candidates: added connections a single improvement
                check will analyze before giving up and falling back.
        """
        super().__init__(graph)
        self._ttl = TTLPlanner(graph, order=order, index=index)
        self._lock = threading.RLock()
        self._events: Dict[int, LiveEvent] = {}
        self._next_event_id = 1
        self._now = now
        self._max_candidates = max_candidates
        self._state: Optional[_LiveState] = None
        #: Whether the most recent query was answered verbatim from the
        #: sealed static index (read under the caller's lock).
        self._last_fast_path = False
        self.stats = LiveQueryStats()
        #: Malformed / out-of-order feed records skipped by
        #: :func:`repro.live.feed.replay` (surfaced in ``/live/stats``).
        self.feed_skipped = 0

    # ------------------------------------------------------------------
    # Lifecycle / event management
    # ------------------------------------------------------------------

    def _build(self) -> None:
        self._ttl.preprocess()
        with self._lock:
            self._rebuild()

    def index_bytes(self) -> int:
        return self._ttl.index_bytes()

    @property
    def index(self) -> TTLIndex:
        """The underlying sealed TTL index."""
        self.preprocess()
        assert self._ttl.index is not None
        return self._ttl.index

    @property
    def metrics(self):
        """Query counters of the wrapped TTL planner (fast-path
        queries; fallback searches are tracked in :attr:`stats`)."""
        return self._ttl.metrics

    @property
    def frozen(self) -> TTLPlanner:
        """The exact planner for the *frozen* (published) timetable.

        This is the degradation target the service's circuit breaker
        falls back to: answers ignore live events, but are exact for
        the base schedule, microsecond-fast, and — because the sealed
        index is immutable — safe to query without the service lock.
        """
        self.preprocess()
        return self._ttl

    def note_feed_skip(self, count: int = 1) -> None:
        """Count feed records skipped during replay."""
        self.feed_skipped += count

    @property
    def now(self) -> int:
        """The engine clock governing event visibility."""
        return self._now

    @property
    def generation(self) -> int:
        """Monotone patch generation (bumps on every overlay swap)."""
        state = self._state
        return state.generation if state is not None else 0

    @property
    def overlay(self) -> OverlayTimetable:
        """The current live view of the timetable."""
        self.preprocess()
        assert self._state is not None
        return self._state.overlay

    @property
    def patch(self) -> PatchSet:
        """The currently active compiled patch-set."""
        self.preprocess()
        assert self._state is not None
        return self._state.patch

    def apply_event(
        self, event: LiveEvent, event_id: Optional[int] = None
    ) -> int:
        """Register ``event`` and swap the overlay; returns its id.

        The event is validated against the base timetable immediately,
        so a bad feed entry fails here instead of poisoning queries.

        ``event_id`` pins an explicit id instead of assigning the next
        one — the journal replay path, where every process must bind
        the same id to the same event so ``clear``-by-id keeps meaning
        the same disruption everywhere.  Ids stay unique either way.
        """
        self.preprocess()
        with self._lock:
            PatchSet.compile(self.graph, [event])  # validate eagerly
            if event_id is None:
                event_id = self._next_event_id
            elif event_id in self._events:
                raise LiveEventError(
                    f"event id {event_id} is already registered"
                )
            elif event_id < 1:
                raise LiveEventError(f"event ids start at 1: {event_id}")
            self._next_event_id = max(self._next_event_id, event_id + 1)
            self._events[event_id] = event
            self._rebuild()
        return event_id

    def clear_event(self, event_id: int) -> None:
        """Remove one event by id and swap the overlay."""
        with self._lock:
            if event_id not in self._events:
                raise LiveEventError(f"unknown event id: {event_id}")
            del self._events[event_id]
            self._rebuild()

    def clear_all(self) -> int:
        """Drop every registered event; returns how many were dropped."""
        with self._lock:
            count = len(self._events)
            self._events.clear()
            if count:
                self._rebuild()
        return count

    def advance_to(self, now: int) -> None:
        """Move the engine clock forward, expiring events on the way."""
        with self._lock:
            if now < self._now:
                raise LiveEventError(
                    f"clock cannot move backwards: {now} < {self._now}"
                )
            self._now = now
            expired = [
                eid for eid, e in self._events.items()
                if e.expires_at <= now
            ]
            for eid in expired:
                del self._events[eid]
            if self._state is not None:
                self._rebuild()

    def events(self) -> List[Tuple[int, LiveEvent]]:
        """Snapshot of registered (id, event) pairs, pending included."""
        with self._lock:
            return sorted(self._events.items())

    def taint_report(self) -> TaintReport:
        """Taint statistics of the whole index under the active patch."""
        self.preprocess()
        assert self._state is not None
        return self._state.taint.report()

    def _rebuild(self) -> None:
        """Compile active events and publish a fresh snapshot."""
        assert self._ttl.index is not None
        active = [
            event for _, event in sorted(self._events.items())
            if event.active_at(self._now)
        ]
        patch = PatchSet.compile(self.graph, active)
        overlay = OverlayTimetable(self.graph, patch)
        generation = (
            self._state.generation + 1 if self._state is not None else 1
        )
        taint = TaintAnalyzer(self._ttl.index, patch)
        # Taint verdicts are memoized on label identity (src, dst, dep)
        # and are only meaningful against the patch they were decided
        # under — a stale clean verdict carried across a generation
        # (e.g. after clear_event) would certify a path against the
        # wrong patch.  Every swap therefore gets a *fresh* analyzer;
        # assert the invariant instead of trusting it silently.
        assert taint.patch is patch and not taint.memo_size, (
            "taint analyzer must start empty for its own patch-set"
        )
        self._state = _LiveState(
            generation=generation,
            patch=patch,
            overlay=overlay,
            taint=taint,
            fallback=DijkstraPlanner(overlay),
        )

    def _ready_state(self) -> _LiveState:
        self.preprocess()
        state = self._state
        assert state is not None
        return state

    @property
    def last_query_fast_path(self) -> bool:
        """True when the most recent query was answered verbatim from
        the sealed static index.

        Such an answer is a pure function of the index — independent of
        the patch generation that happened to be active — which is what
        makes it eligible for the serving cache's generation re-keying
        (:meth:`static_answer_valid`).  Callers must hold the same lock
        across the query and this read; the service's planner lock
        already provides that.
        """
        return self._last_fast_path

    def static_answer_valid(
        self,
        kind: str,
        source: int,
        destination: int,
        t: int,
        t_end: Optional[int] = None,
    ) -> bool:
        """Certify that the static index's answer is exact right now.

        Runs the same two-stage safety argument the query paths use —
        the TaintAnalyzer over the active patch-set (Definition 7 /
        Lemma 4) plus the added-connection improvement bound — without
        materializing the journey.  ``True`` is a proof that re-running
        the query would take the fast path and reproduce the static
        answer byte for byte; ``False`` means tainted, improvable, or
        punted (candidate flood), i.e. *cannot certify* — the serving
        cache treats all three as invalidation.
        """
        if source == destination:
            return True
        state = self._ready_state()
        if state.patch.is_empty():
            return True
        index = self._ttl.index
        assert index is not None
        if kind == "eap":
            sketch = best_eap_sketch(index, source, destination, t)
            if sketch is not None and state.taint.sketch_tainted(sketch):
                return False
            bound = sketch.arr if sketch is not None else INF
            verdict = self._eap_improvable(
                state, source, destination, t, bound
            )
        elif kind == "ldp":
            sketch = best_ldp_sketch(index, source, destination, t)
            if sketch is not None and state.taint.sketch_tainted(sketch):
                return False
            bound = sketch.dep if sketch is not None else NEG_INF
            verdict = self._ldp_improvable(
                state, source, destination, t, bound
            )
        elif kind == "sdp":
            if t_end is None:
                return False
            sketch = best_sdp_sketch(index, source, destination, t, t_end)
            if sketch is not None and state.taint.sketch_tainted(sketch):
                return False
            bound = sketch.duration if sketch is not None else INF
            verdict = self._sdp_improvable(
                state, source, destination, t, t_end, bound
            )
        else:
            return False
        return verdict is False

    # ------------------------------------------------------------------
    # Optimistic bounds through the static index
    # ------------------------------------------------------------------
    #
    # The base timetable is a superset of (live minus additions), so
    # static label lookups *lower*-bound arrival times and
    # *upper*-bound departure times of any live path segment that does
    # not itself ride an addition.  That is exactly the direction a
    # sound "no better journey exists" proof needs.

    def _static_eat(self, x: int, y: int, t: int) -> int:
        """Optimistic earliest arrival ``x -> y`` departing >= ``t``."""
        if x == y:
            return t
        assert self._ttl.index is not None
        sketch = best_eap_sketch(self._ttl.index, x, y, t)
        return sketch.arr if sketch is not None else INF

    def _static_ldt(self, x: int, y: int, t: int) -> int:
        """Optimistic latest departure ``x -> y`` arriving <= ``t``."""
        if x == y:
            return t
        assert self._ttl.index is not None
        sketch = best_ldp_sketch(self._ttl.index, x, y, t)
        return sketch.dep if sketch is not None else NEG_INF

    def _eap_improvable(
        self, state: _LiveState, u: int, v: int, t: int, bound_arr: int
    ) -> Optional[bool]:
        """Could an added connection yield arrival < ``bound_arr``?

        Returns ``None`` when there are too many candidates to decide
        cheaply (the caller falls back).
        """
        cands = [
            c for c in state.patch.added_departing_in(t, bound_arr)
            if c.arr < bound_arr
        ]
        if not cands:
            return False
        if len(cands) > self._max_candidates:
            return None
        points = {v}
        for c in cands:
            points.add(c.u)
            points.add(c.v)
        best = {x: self._static_eat(u, x, t) for x in points}
        # Chains run forward in time, so one pass in departure order
        # usually converges; iterate to a fixpoint regardless.
        for _ in range(len(cands)):
            changed = False
            for c in cands:
                if best[c.u] <= c.dep and c.arr < best[c.v]:
                    best[c.v] = c.arr
                    changed = True
                    for y in points:
                        if y != c.v:
                            alt = self._static_eat(c.v, y, c.arr)
                            if alt < best[y]:
                                best[y] = alt
            if not changed:
                break
        return best[v] < bound_arr

    def _ldp_improvable(
        self, state: _LiveState, u: int, v: int, t: int, bound_dep: int
    ) -> Optional[bool]:
        """Could an added connection yield departure > ``bound_dep``?"""
        cands = [
            c for c in state.patch.added_arriving_by(t)
            if c.dep > bound_dep
        ]
        if not cands:
            return False
        if len(cands) > self._max_candidates:
            return None
        points = {u}
        for c in cands:
            points.add(c.u)
            points.add(c.v)
        # late[x]: optimistic latest time to be at x and still reach v
        # by t on the live schedule.
        late = {x: self._static_ldt(x, v, t) for x in points}
        cands_desc = sorted(cands, key=lambda c: -c.arr)
        for _ in range(len(cands)):
            changed = False
            for c in cands_desc:
                if c.arr <= late[c.v] and c.dep > late[c.u]:
                    late[c.u] = c.dep
                    changed = True
                    for y in points:
                        if y != c.u:
                            alt = self._static_ldt(y, c.u, c.dep)
                            if alt > late[y]:
                                late[y] = alt
            if not changed:
                break
        return late[u] > bound_dep

    def _sdp_improvable(
        self,
        state: _LiveState,
        u: int,
        v: int,
        t: int,
        t_end: int,
        bound_duration: int,
    ) -> Optional[bool]:
        """Could an added connection yield duration < ``bound_duration``
        inside the ``[t, t_end]`` window?

        Additions are analyzed per *run* (maximal same-trip leg
        sequence, see ``PatchSet.added_runs``).  A journey beating the
        static optimum boards its first added leg in some run and
        alights its last added leg in some (possibly the same) run;
        everything before/after those legs rides live-minus-added
        connections, which the static index bounds optimistically.  So
        the exact board/alight pairing within each run plus a coarse
        pairing across runs covers every possible chain, without the
        per-connection pair explosion a retimed multi-leg trip would
        otherwise cause.
        """
        runs = []
        for run in state.patch.added_runs:
            # Window filters keep legs a conforming journey could ride.
            legs = [c for c in run if c.dep >= t and c.arr <= t_end]
            if legs:
                runs.append(legs)
        if not runs:
            return False
        if len(runs) > self._max_candidates:
            return None
        boards: List[Tuple[int, int]] = []  # (latest dep >= t, min arr)
        alights: List[Tuple[int, int]] = []  # (earliest arr <= t_end, max dep)
        for legs in runs:
            # prefix = optimistic latest in-window departure from ``u``
            # boarding this run at or before the current leg; ``ea`` =
            # earliest arrival at ``v`` alighting after the current leg.
            # Legs are time-sorted, so board index <= alight index.
            prefix = NEG_INF
            best_ea = INF
            for c in legs:
                ld = self._static_ldt(u, c.u, c.dep)
                if ld >= t:
                    prefix = max(prefix, ld)
                ea = self._static_eat(c.v, v, c.arr)
                if ea <= t_end:
                    best_ea = min(best_ea, ea)
                    if prefix > NEG_INF and ea - prefix < bound_duration:
                        return True
            boards.append((prefix, legs[0].arr))
            alights.append((best_ea, legs[-1].dep))
        # Cross-run chains: board run ``a`` first, alight run ``b``
        # last.  Coarse but sound: duration >= (earliest arrival after
        # b) - (latest departure boarding a), and the chain is feasible
        # only if some a-leg alights no later than some b-leg departs.
        for a, (ld_a, min_arr_a) in enumerate(boards):
            if ld_a == NEG_INF:
                continue
            for b, (ea_b, max_dep_b) in enumerate(alights):
                if a == b or ea_b == INF:
                    continue
                if min_arr_a <= max_dep_b and ea_b - ld_a < bound_duration:
                    return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def earliest_arrival(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._last_fast_path = True
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        state = self._ready_state()
        self.stats.queries += 1
        if state.patch.is_empty():
            self.stats.fast_path += 1
            return self._ttl.earliest_arrival(source, destination, t)
        self._last_fast_path = False
        index = self._ttl.index
        assert index is not None
        sketch = best_eap_sketch(index, source, destination, t)
        if sketch is not None and state.taint.sketch_tainted(sketch):
            self.stats.fallback_taint += 1
            return state.fallback.earliest_arrival(source, destination, t)
        bound = sketch.arr if sketch is not None else INF
        verdict = self._eap_improvable(state, source, destination, t, bound)
        if verdict is None:
            self.stats.fallback_flood += 1
            return state.fallback.earliest_arrival(source, destination, t)
        if verdict:
            self.stats.fallback_improvement += 1
            return state.fallback.earliest_arrival(source, destination, t)
        self.stats.fast_path += 1
        self._last_fast_path = True
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self._ttl.concise
        )

    def latest_departure(
        self, source: int, destination: int, t: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._last_fast_path = True
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        state = self._ready_state()
        self.stats.queries += 1
        if state.patch.is_empty():
            self.stats.fast_path += 1
            return self._ttl.latest_departure(source, destination, t)
        self._last_fast_path = False
        index = self._ttl.index
        assert index is not None
        sketch = best_ldp_sketch(index, source, destination, t)
        if sketch is not None and state.taint.sketch_tainted(sketch):
            self.stats.fallback_taint += 1
            return state.fallback.latest_departure(source, destination, t)
        bound = sketch.dep if sketch is not None else NEG_INF
        verdict = self._ldp_improvable(state, source, destination, t, bound)
        if verdict is None:
            self.stats.fallback_flood += 1
            return state.fallback.latest_departure(source, destination, t)
        if verdict:
            self.stats.fallback_improvement += 1
            return state.fallback.latest_departure(source, destination, t)
        self.stats.fast_path += 1
        self._last_fast_path = True
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self._ttl.concise
        )

    def profile(self, source: int, destination: int, t: int, t_end: int):
        """All non-dominated ``(dep, arr)`` journeys in the window,
        exact for the live schedule.

        With no active disruptions the sealed index answers directly;
        under a patch the whole frontier could shift, so rather than
        certifying every frontier point the engine goes straight to
        the exact departure-time sweep on the overlay (counted as a
        punt, like the candidate-flood fallbacks).
        """
        self._check_query(source, destination)
        self._check_window(t, t_end)
        self._last_fast_path = True
        if source == destination:
            return [(t, t)]
        state = self._ready_state()
        self.stats.queries += 1
        if state.patch.is_empty():
            self.stats.fast_path += 1
            return self._ttl.profile(source, destination, t, t_end)
        self._last_fast_path = False
        self.stats.fallback_flood += 1
        return state.fallback.profile(source, destination, t, t_end)

    def shortest_duration(
        self, source: int, destination: int, t: int, t_end: int
    ) -> Optional[Journey]:
        self._check_query(source, destination)
        self._check_window(t, t_end)
        self._last_fast_path = True
        if source == destination:
            return Journey(source, destination, t, t, path=[])
        state = self._ready_state()
        self.stats.queries += 1
        if state.patch.is_empty():
            self.stats.fast_path += 1
            return self._ttl.shortest_duration(source, destination, t, t_end)
        self._last_fast_path = False
        index = self._ttl.index
        assert index is not None
        sketch = best_sdp_sketch(index, source, destination, t, t_end)
        if sketch is not None and state.taint.sketch_tainted(sketch):
            self.stats.fallback_taint += 1
            return state.fallback.shortest_duration(
                source, destination, t, t_end
            )
        bound = sketch.duration if sketch is not None else INF
        verdict = self._sdp_improvable(
            state, source, destination, t, t_end, bound
        )
        if verdict is None:
            self.stats.fallback_flood += 1
            return state.fallback.shortest_duration(
                source, destination, t, t_end
            )
        if verdict:
            self.stats.fallback_improvement += 1
            return state.fallback.shortest_duration(
                source, destination, t, t_end
            )
        self.stats.fast_path += 1
        self._last_fast_path = True
        if sketch is None:
            return None
        return sketch_to_journey(
            index, sketch, source, destination, self._ttl.concise
        )
