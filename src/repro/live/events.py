"""Live schedule events (the disruption vocabulary).

Three event kinds cover the realtime feeds operators actually publish
(GTFS-RT TripUpdates reduced to their schedule effect):

* :class:`TripDelay` — a trip runs late from a stop onward (the whole
  trip when ``from_stop`` is 0): the arrival at the incident stop
  stands, its departure and everything after slip by ``delay`` seconds;
* :class:`TripCancellation` — the trip does not run at all;
* :class:`ExtraTrip` — an unscheduled relief vehicle with an explicit
  stop/time sequence.

Every event carries ``apply_at`` / ``expires_at`` wall-clock stamps so
an engine replaying a feed knows when the patch becomes visible and
when it can be dropped without touching queries already in flight.
Events are immutable values with a JSON round-trip
(:meth:`LiveEvent.to_dict` / :func:`event_from_dict`) used by the HTTP
injection endpoints and the feed recorder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from repro.errors import LiveEventError
from repro.timeutil import INF


@dataclass(frozen=True)
class LiveEvent:
    """Base class: visibility window shared by every event kind.

    Attributes:
        apply_at: time from which the event patches the schedule.
        expires_at: time from which the event is dropped again
            (``INF`` = until cleared).
    """

    apply_at: int = 0
    expires_at: int = INF

    #: Tag used by the JSON round-trip; set per subclass.
    kind = "event"

    def __post_init__(self) -> None:
        if self.expires_at <= self.apply_at:
            raise LiveEventError(
                f"event expires at {self.expires_at} before it applies "
                f"at {self.apply_at}"
            )

    def active_at(self, now: int) -> bool:
        """True while the event patches the schedule at time ``now``."""
        return self.apply_at <= now < self.expires_at

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :func:`event_from_dict`)."""
        data = {"kind": self.kind, "apply_at": self.apply_at}
        if self.expires_at < INF:
            data["expires_at"] = self.expires_at
        return data


@dataclass(frozen=True)
class TripDelay(LiveEvent):
    """Trip ``trip_id`` runs ``delay`` seconds late from ``from_stop``
    onward.

    The arrival at ``from_stop`` stands (the incident happens there),
    its departure and all later stop times slip — the same semantics as
    :func:`repro.datasets.disruptions.delay_trips`.  Delaying from the
    final stop of a trip patches nothing and compiles to a no-op.
    """

    trip_id: int = -1
    delay: int = 0
    from_stop: int = 0

    kind = "delay"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trip_id < 0:
            raise LiveEventError(f"delay needs a trip id: {self.trip_id}")
        if self.delay < 0:
            raise LiveEventError(
                f"negative delay for trip {self.trip_id}: {self.delay}"
            )
        if self.from_stop < 0:
            raise LiveEventError(
                f"negative stop index for trip {self.trip_id}: "
                f"{self.from_stop}"
            )

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update(
            trip_id=self.trip_id, delay=self.delay, from_stop=self.from_stop
        )
        return data


@dataclass(frozen=True)
class TripCancellation(LiveEvent):
    """Trip ``trip_id`` does not run while the event is active."""

    trip_id: int = -1

    kind = "cancel"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trip_id < 0:
            raise LiveEventError(
                f"cancellation needs a trip id: {self.trip_id}"
            )

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["trip_id"] = self.trip_id
        return data


@dataclass(frozen=True)
class ExtraTrip(LiveEvent):
    """An unscheduled relief vehicle.

    Attributes:
        stops: station sequence (>= 2 stations, no immediate repeats).
        times: one ``(arr, dep)`` pair per stop, strictly increasing
            between stops and ``dep >= arr`` within a stop.
        trip_id: optional explicit id; when ``None`` the engine assigns
            a fresh id above the timetable's existing trips.
    """

    stops: Tuple[int, ...] = ()
    times: Tuple[Tuple[int, int], ...] = ()
    trip_id: Optional[int] = None

    kind = "extra"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "stops", tuple(self.stops))
        object.__setattr__(
            self, "times", tuple((int(a), int(d)) for a, d in self.times)
        )
        if len(self.stops) < 2:
            raise LiveEventError(
                f"extra trip needs >= 2 stops, got {len(self.stops)}"
            )
        if len(self.times) != len(self.stops):
            raise LiveEventError(
                f"extra trip has {len(self.stops)} stops but "
                f"{len(self.times)} stop times"
            )
        for a, b in zip(self.stops, self.stops[1:]):
            if a == b:
                raise LiveEventError(
                    f"extra trip repeats consecutive stop {a}"
                )
        for i, (arr, dep) in enumerate(self.times):
            if dep < arr:
                raise LiveEventError(
                    f"extra trip departs stop {i} before arriving"
                )
        for i in range(len(self.times) - 1):
            if self.times[i + 1][0] <= self.times[i][1]:
                raise LiveEventError(
                    f"extra trip has non-increasing times between stops "
                    f"{i} and {i + 1}"
                )

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update(
            stops=list(self.stops),
            times=[list(pair) for pair in self.times],
        )
        if self.trip_id is not None:
            data["trip_id"] = self.trip_id
        return data


_EVENT_KINDS: Dict[str, Type[LiveEvent]] = {
    "delay": TripDelay,
    "cancel": TripCancellation,
    "extra": ExtraTrip,
}


def event_from_dict(data: dict) -> LiveEvent:
    """Rebuild an event from its :meth:`LiveEvent.to_dict` form."""
    if not isinstance(data, dict):
        raise LiveEventError(f"event payload must be an object: {data!r}")
    kind = data.get("kind")
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise LiveEventError(
            f"unknown event kind {kind!r}; expected one of "
            f"{sorted(_EVENT_KINDS)}"
        )
    window = {
        "apply_at": int(data.get("apply_at", 0)),
        "expires_at": int(data.get("expires_at", INF)),
    }
    try:
        if cls is TripDelay:
            return TripDelay(
                trip_id=int(data["trip_id"]),
                delay=int(data["delay"]),
                from_stop=int(data.get("from_stop", 0)),
                **window,
            )
        if cls is TripCancellation:
            return TripCancellation(trip_id=int(data["trip_id"]), **window)
        return ExtraTrip(
            stops=tuple(int(s) for s in data["stops"]),
            times=tuple((int(a), int(d)) for a, d in data["times"]),
            trip_id=(
                int(data["trip_id"]) if data.get("trip_id") is not None
                else None
            ),
            **window,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise LiveEventError(f"malformed {kind!r} event: {exc}") from exc
