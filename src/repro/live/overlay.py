"""Patch-sets and the overlay timetable.

:class:`PatchSet` compiles a set of active events against a frozen
:class:`~repro.graph.timetable.TimetableGraph` into an explicit
connection diff — ``removed`` (connections no longer valid) and
``added`` (retimed or extra connections) — plus per-trip and per-time
indexes the taint analyzer and the hybrid engine read.

:class:`OverlayTimetable` then layers that diff over the base graph
*without copying it*: only stations incident to a patched connection
get fresh adjacency lists; every other station shares the base graph's
list objects.  The result duck-types ``TimetableGraph`` closely enough
that :mod:`repro.algorithms.temporal_dijkstra` (and hence
``DijkstraPlanner``) runs on it unchanged, which is what the engine's
fallback path relies on.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LiveEventError, UnknownStationError, UnknownTripError
from repro.graph.connection import Connection
from repro.graph.route import StopTime, trip_connections
from repro.graph.timetable import TimetableGraph
from repro.live.events import ExtraTrip, LiveEvent, TripCancellation, TripDelay


class PatchSet:
    """The compiled diff between the base and the live timetable.

    Attributes:
        removed: base connections invalidated by the active events.
        added: new connections, sorted by departure time.
        disrupted_trips: trips with at least one removed connection.
        removed_by_trip: removed connections grouped per trip (read by
            the taint analyzer to decide whether a label segment rides
            a patched portion of a trip).
        extra_trip_ids: trip ids of injected extra vehicles.
    """

    __slots__ = (
        "removed",
        "added",
        "added_runs",
        "disrupted_trips",
        "removed_by_trip",
        "extra_trip_ids",
        "_added_deps",
        "_added_by_arr",
        "_added_arrs",
    )

    def __init__(
        self,
        removed: Iterable[Connection],
        added: Iterable[Connection],
    ) -> None:
        self.removed = frozenset(removed)
        self.added: Tuple[Connection, ...] = tuple(
            sorted(added, key=lambda c: (c.dep, c.arr))
        )
        by_trip: Dict[int, List[Connection]] = {}
        for conn in self.removed:
            by_trip.setdefault(conn.trip, []).append(conn)
        self.removed_by_trip: Dict[int, Tuple[Connection, ...]] = {
            trip: tuple(conns) for trip, conns in by_trip.items()
        }
        self.disrupted_trips = frozenset(by_trip)
        base_trips = {c.trip for c in self.removed}
        self.extra_trip_ids = frozenset(
            c.trip for c in self.added if c.trip not in base_trips
        )
        self._added_deps = [c.dep for c in self.added]
        self._added_by_arr = sorted(self.added, key=lambda c: (c.arr, c.dep))
        self._added_arrs = [c.arr for c in self._added_by_arr]
        self.added_runs: Tuple[Tuple[Connection, ...], ...] = _group_runs(
            self.added
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def compile(
        cls, graph: TimetableGraph, events: Sequence[LiveEvent]
    ) -> "PatchSet":
        """Compile ``events`` (all taken as active) against ``graph``.

        Events on the same trip compose: delays stack in event order
        and a cancellation wins over any delay.  Extra trips without an
        explicit id get fresh ids above the graph's existing trips,
        assigned deterministically in event order.
        """
        cancelled: set = set()
        delays_by_trip: Dict[int, List[TripDelay]] = {}
        extras: List[ExtraTrip] = []
        for event in events:
            if isinstance(event, TripCancellation):
                if event.trip_id not in graph.trips:
                    raise UnknownTripError(event.trip_id)
                cancelled.add(event.trip_id)
            elif isinstance(event, TripDelay):
                if event.trip_id not in graph.trips:
                    raise UnknownTripError(event.trip_id)
                delays_by_trip.setdefault(event.trip_id, []).append(event)
            elif isinstance(event, ExtraTrip):
                extras.append(event)
            else:
                raise LiveEventError(f"unsupported event: {event!r}")

        removed: List[Connection] = []
        added: List[Connection] = []

        for trip_id in sorted(cancelled | set(delays_by_trip)):
            trip = graph.trips[trip_id]
            route = graph.route_of_trip(trip_id)
            original = trip_connections(route, trip)
            if trip_id in cancelled:
                removed.extend(original)
                continue
            times = list(trip.stop_times)
            for event in delays_by_trip[trip_id]:
                times = _delay_stop_times(times, event.delay, event.from_stop)
            retimed = [
                Connection(
                    u=route.stops[i],
                    v=route.stops[i + 1],
                    dep=times[i].dep,
                    arr=times[i + 1].arr,
                    trip=trip_id,
                )
                for i in range(len(route.stops) - 1)
            ]
            for old, new in zip(original, retimed):
                if old != new:
                    removed.append(old)
                    added.append(new)

        next_extra_id = max(graph.trips, default=-1) + 1
        for event in extras:
            for stop in event.stops:
                if not 0 <= stop < graph.n:
                    raise UnknownStationError(stop)
            if event.trip_id is not None:
                trip_id = event.trip_id
                if trip_id in graph.trips:
                    raise LiveEventError(
                        f"extra trip id {trip_id} already exists in the "
                        f"timetable"
                    )
            else:
                trip_id = next_extra_id
                next_extra_id += 1
            for i in range(len(event.stops) - 1):
                added.append(
                    Connection(
                        u=event.stops[i],
                        v=event.stops[i + 1],
                        dep=event.times[i][1],
                        arr=event.times[i + 1][0],
                        trip=trip_id,
                    )
                )
        return cls(removed, added)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the patch-set changes nothing."""
        return not self.removed and not self.added

    def affected_stations(self) -> frozenset:
        """Stations incident to at least one patched connection."""
        stations = set()
        for conn in self.removed:
            stations.add(conn.u)
            stations.add(conn.v)
        for conn in self.added:
            stations.add(conn.u)
            stations.add(conn.v)
        return frozenset(stations)

    def added_departing_in(self, t: int, t_end: int) -> Tuple[Connection, ...]:
        """Added connections with ``t <= dep <= t_end`` (dep order)."""
        lo = bisect_left(self._added_deps, t)
        hi = bisect_right(self._added_deps, t_end)
        return self.added[lo:hi]

    def added_arriving_by(self, t: int) -> Tuple[Connection, ...]:
        """Added connections with ``arr <= t`` (arrival order)."""
        hi = bisect_right(self._added_arrs, t)
        return tuple(self._added_by_arr[:hi])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatchSet(removed={len(self.removed)}, "
            f"added={len(self.added)}, "
            f"trips={len(self.disrupted_trips)})"
        )


def _group_runs(
    added: Sequence[Connection],
) -> Tuple[Tuple[Connection, ...], ...]:
    """Group added connections into maximal same-trip leg sequences.

    A retimed trip contributes its patched legs as one consecutive run
    and an extra trip is one run by construction; the improvement
    analysis in the engine reasons per run (board anywhere, alight
    anywhere later) instead of per connection.
    """
    by_trip: Dict[int, List[Connection]] = {}
    for conn in added:
        by_trip.setdefault(conn.trip, []).append(conn)
    runs: List[Tuple[Connection, ...]] = []
    for trip in sorted(by_trip):
        legs = sorted(by_trip[trip], key=lambda c: c.dep)
        run: List[Connection] = []
        for conn in legs:
            if run and (run[-1].v != conn.u or conn.dep < run[-1].arr):
                runs.append(tuple(run))
                run = []
            run.append(conn)
        if run:
            runs.append(tuple(run))
    return tuple(runs)


def _delay_stop_times(
    times: List[StopTime], delay: int, from_stop: int
) -> List[StopTime]:
    """Apply one delay to a stop-time sequence (incident semantics).

    A zero delay, or an incident at (or past) the final stop, changes
    nothing — there is no later departure left to slip.
    """
    if delay == 0 or from_stop >= len(times) - 1:
        return times
    out: List[StopTime] = []
    for i, st in enumerate(times):
        if i < from_stop:
            out.append(st)
        elif i == from_stop:
            out.append(StopTime(st.arr, st.dep + delay))
        else:
            out.append(StopTime(st.arr + delay, st.dep + delay))
    return out


class OverlayTimetable:
    """A patched, read-only view of a base timetable.

    Shares the base graph's per-station adjacency lists for every
    station the patch-set does not touch; affected stations get fresh
    sorted lists.  Duck-types the slice of
    :class:`~repro.graph.timetable.TimetableGraph` the search
    algorithms use (``n``/``out``/``inc``/``out_deps``/``inc_arrs``,
    the bisect helpers, and ``departure_times``).
    """

    def __init__(self, base: TimetableGraph, patch: PatchSet) -> None:
        self.base = base
        self.patch = patch
        self.n = base.n
        self.station_names = base.station_names
        self.routes = base.routes

        removed = patch.removed
        added_out: Dict[int, List[Connection]] = {}
        added_in: Dict[int, List[Connection]] = {}
        for conn in patch.added:
            added_out.setdefault(conn.u, []).append(conn)
            added_in.setdefault(conn.v, []).append(conn)
        removed_out: Dict[int, bool] = {}
        removed_in: Dict[int, bool] = {}
        for conn in removed:
            removed_out[conn.u] = True
            removed_in[conn.v] = True

        self.out: List[List[Connection]] = list(base.out)
        self.inc: List[List[Connection]] = list(base.inc)
        self.out_deps: List[List[int]] = list(base.out_deps)
        self.inc_arrs: List[List[int]] = list(base.inc_arrs)
        self.patched_stations = frozenset(
            set(added_out) | set(added_in) | set(removed_out)
            | set(removed_in)
        )
        for s in set(added_out) | set(removed_out):
            conns = [c for c in base.out[s] if c not in removed]
            conns.extend(added_out.get(s, ()))
            conns.sort(key=lambda c: (c.dep, c.arr))
            self.out[s] = conns
            self.out_deps[s] = [c.dep for c in conns]
        for s in set(added_in) | set(removed_in):
            conns = [c for c in base.inc[s] if c not in removed]
            conns.extend(added_in.get(s, ()))
            conns.sort(key=lambda c: (c.arr, c.dep))
            self.inc[s] = conns
            self.inc_arrs[s] = [c.arr for c in conns]

        self._connections: Optional[Tuple[Connection, ...]] = None

    # ------------------------------------------------------------------
    # TimetableGraph protocol (the slice the searches use)
    # ------------------------------------------------------------------

    @property
    def connections(self) -> Tuple[Connection, ...]:
        """All live connections (materialized lazily; O(m) once)."""
        if self._connections is None:
            kept = [
                c for c in self.base.connections
                if c not in self.patch.removed
            ]
            kept.extend(self.patch.added)
            self._connections = tuple(kept)
        return self._connections

    @property
    def m(self) -> int:
        """Number of live connections."""
        return (
            self.base.m - len(self.patch.removed) + len(self.patch.added)
        )

    def station_name(self, station: int) -> str:
        """Delegates to the base graph."""
        return self.base.station_name(station)

    def out_degree(self, station: int) -> int:
        self._check_station(station)
        return len(self.out[station])

    def in_degree(self, station: int) -> int:
        self._check_station(station)
        return len(self.inc[station])

    def departure_times(self, station: int) -> List[int]:
        """Sorted distinct departure times (live view)."""
        self._check_station(station)
        return sorted({c.dep for c in self.out[station]})

    def arrival_times(self, station: int) -> List[int]:
        """Sorted distinct arrival times (live view)."""
        self._check_station(station)
        return sorted({c.arr for c in self.inc[station]})

    def first_boardable(self, station: int, t: int) -> int:
        """See :meth:`TimetableGraph.first_boardable`."""
        return bisect_left(self.out_deps[station], t)

    def last_alightable(self, station: int, t: int) -> int:
        """See :meth:`TimetableGraph.last_alightable`."""
        return bisect_right(self.inc_arrs[station], t)

    def _check_station(self, station: int) -> None:
        if not 0 <= station < self.n:
            raise UnknownStationError(station)

    def materialize(self) -> TimetableGraph:
        """An independent :class:`TimetableGraph` of the live schedule.

        For tests and offline re-indexing; routes are dropped because
        patched trips no longer match their route's timetable.
        """
        return TimetableGraph(
            num_stations=self.n,
            connections=self.connections,
            routes={},
            station_names=self.station_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OverlayTimetable(n={self.n}, m={self.m}, "
            f"patched_stations={len(self.patched_stations)})"
        )
