"""Recorded event streams: replay, persistence, synthesis.

A *feed* is a time-ordered sequence of ``(at, event)`` records — the
offline stand-in for a realtime GTFS-RT subscription.  Feeds are JSON
round-trippable (for fixtures and the HTTP API), replayable against a
:class:`~repro.live.engine.LiveOverlayEngine` (advancing its clock so
apply/expire stamps behave), and synthesizable from any timetable at a
chosen disruption rate for tests and benchmarks.
"""

from __future__ import annotations

import json
import random
import warnings
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import LiveEventError, UnknownTripError
from repro.graph.timetable import TimetableGraph
from repro.live.engine import LiveOverlayEngine
from repro.live.events import (
    ExtraTrip,
    LiveEvent,
    TripCancellation,
    TripDelay,
    event_from_dict,
)


class TimedEvent(NamedTuple):
    """One feed record: ``event`` becomes known at time ``at``."""

    at: int
    event: LiveEvent


class EventFeed:
    """A time-ordered recorded event stream."""

    def __init__(self, records: Iterable[TimedEvent] = ()) -> None:
        self.records: List[TimedEvent] = sorted(
            (TimedEvent(int(at), event) for at, event in records),
            key=lambda r: r.at,
        )
        #: Malformed records dropped by a tolerant ``from_json``.
        self.skipped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TimedEvent]:
        return iter(self.records)

    def to_json(self) -> str:
        """Serialize the feed (inverse of :meth:`from_json`)."""
        return json.dumps(
            [
                {"at": record.at, "event": record.event.to_dict()}
                for record in self.records
            ]
        )

    @classmethod
    def from_json(cls, text: str, strict: bool = True) -> "EventFeed":
        """Parse a feed serialized by :meth:`to_json`.

        With ``strict=True`` (default) any malformed record raises
        :class:`~repro.errors.LiveEventError`.  With ``strict=False``
        — the posture of a long-running consumer of an external feed —
        malformed records are skipped with a warning and counted in
        the returned feed's :attr:`skipped`; only the envelope itself
        (non-JSON, non-list) still raises.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LiveEventError(f"malformed feed JSON: {exc}") from exc
        if not isinstance(data, list):
            raise LiveEventError("feed JSON must be a list of records")
        records = []
        skipped = 0
        for entry in data:
            try:
                if not isinstance(entry, dict) or "at" not in entry:
                    raise LiveEventError(
                        f"malformed feed record: {entry!r}"
                    )
                records.append(
                    TimedEvent(
                        int(entry["at"]), event_from_dict(entry["event"])
                    )
                )
            except (LiveEventError, KeyError, TypeError, ValueError) as exc:
                if strict:
                    if isinstance(exc, LiveEventError):
                        raise
                    raise LiveEventError(
                        f"malformed feed record: {entry!r} ({exc})"
                    ) from exc
                skipped += 1
                warnings.warn(
                    f"skipping malformed feed record: {entry!r} ({exc})",
                    stacklevel=2,
                )
        feed = cls(records)
        feed.skipped = skipped
        return feed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventFeed(records={len(self.records)})"


def synthetic_feed(
    graph: TimetableGraph,
    rate: float = 0.05,
    seed: int = 0,
    max_delay: int = 900,
    cancel_share: float = 0.2,
    extra_share: float = 0.0,
    lead: int = 300,
    duration: Optional[int] = None,
) -> EventFeed:
    """Sample a deterministic disruption stream for ``graph``.

    Args:
        graph: the base timetable.
        rate: fraction of trips that suffer an event.
        seed: RNG seed (same seed, same feed).
        max_delay: delays are uniform in ``1..max_delay`` seconds.
        cancel_share: probability a disrupted trip is cancelled rather
            than delayed.
        extra_share: probability of *additionally* injecting a relief
            vehicle shadowing a disrupted trip a headway later.
        lead: seconds before the trip's departure at which the event
            becomes known (clamped at 0).
        duration: event lifetime from its apply time (default: until
            cleared).

    Returns:
        An :class:`EventFeed` sorted by announcement time.
    """
    if not 0.0 <= rate <= 1.0:
        raise LiveEventError(f"rate out of range: {rate}")
    rng = random.Random(seed)
    trip_ids = sorted(graph.trips)
    count = int(round(rate * len(trip_ids)))
    records: List[TimedEvent] = []
    for trip_id in rng.sample(trip_ids, count):
        trip = graph.trips[trip_id]
        at = max(0, trip.departure - lead)
        expires = at + duration if duration is not None else None
        window = {"apply_at": at}
        if expires is not None:
            window["expires_at"] = expires
        if rng.random() < cancel_share:
            event: LiveEvent = TripCancellation(trip_id=trip_id, **window)
        else:
            from_stop = rng.randrange(0, len(trip.stop_times))
            event = TripDelay(
                trip_id=trip_id,
                delay=rng.randint(1, max_delay),
                from_stop=from_stop,
                **window,
            )
        records.append(TimedEvent(at, event))
        if rng.random() < extra_share:
            route = graph.route_of_trip(trip_id)
            shift = rng.randint(60, max(61, max_delay))
            records.append(
                TimedEvent(
                    at,
                    ExtraTrip(
                        stops=route.stops,
                        times=tuple(
                            (st.arr + shift, st.dep + shift)
                            for st in trip.stop_times
                        ),
                        **window,
                    ),
                )
            )
    return EventFeed(records)


def replay(
    engine: LiveOverlayEngine,
    feed: EventFeed,
    until: Optional[int] = None,
    on_error: str = "skip",
) -> Iterator[Tuple[int, LiveEvent, int]]:
    """Drive ``engine`` through ``feed`` in announcement order.

    Advances the engine clock to each record's ``at`` (expiring events
    on the way), applies the event, and yields
    ``(at, event, event_id)`` so callers can interleave queries.
    Records later than ``until`` are left unplayed.

    Real feeds misbehave, so with ``on_error="skip"`` (default) a
    record the engine rejects — unknown trip, malformed times — or
    one announced *behind* the engine clock (out of order relative to
    an earlier replay) is skipped with a warning and counted on
    ``engine.feed_skipped`` (surfaced by the service's
    ``/live/stats``) instead of aborting the whole replay.  Pass
    ``on_error="raise"`` to get the old fail-fast behavior.
    """
    if on_error not in ("skip", "raise"):
        raise ValueError(f"on_error must be 'skip' or 'raise': {on_error!r}")
    for record in feed:
        if until is not None and record.at > until:
            break
        if record.at < engine.now:
            if on_error == "raise":
                raise LiveEventError(
                    f"out-of-order feed record at t={record.at} "
                    f"(engine clock already at {engine.now})"
                )
            engine.note_feed_skip()
            warnings.warn(
                f"skipping out-of-order feed record at t={record.at} "
                f"(engine clock at {engine.now})",
                stacklevel=2,
            )
            continue
        if record.at > engine.now:
            engine.advance_to(record.at)
        try:
            event_id = engine.apply_event(record.event)
        except (LiveEventError, UnknownTripError) as exc:
            if on_error == "raise":
                raise
            engine.note_feed_skip()
            warnings.warn(
                f"skipping rejected feed event at t={record.at}: {exc}",
                stacklevel=2,
            )
            continue
        yield record.at, record.event, event_id
