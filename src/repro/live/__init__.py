"""Live disruption overlay: delay/cancellation-aware queries without
re-indexing.

TTL is a static 2-hop labelling — the paper assumes fixed schedules,
and rebuilding the index per delay event is exactly the cost a
production deployment cannot pay.  This subpackage layers a mutable
*patch-set* over the frozen :class:`~repro.graph.timetable.TimetableGraph`
and answers queries with a hybrid strategy (cf. Delling et al.,
*Public Transit Labeling*, which motivates handling real-time updates
at query time):

* :mod:`repro.live.events`  — delay / cancellation / extra-trip events
  with apply/expire timestamps;
* :mod:`repro.live.overlay` — :class:`PatchSet` (the compiled diff) and
  :class:`OverlayTimetable` (a zero-copy patched view of the graph);
* :mod:`repro.live.taint`   — which TTL labels are invalidated by the
  current patch-set (recursing through the per-label pivot data);
* :mod:`repro.live.engine`  — :class:`LiveOverlayEngine`, answering
  EAP/LDP/SDP from the untouched index when safe and falling back to
  temporal Dijkstra on the overlay otherwise;
* :mod:`repro.live.feed`    — recorded event streams for tests and
  benchmarks.
"""

from repro.live.events import (
    ExtraTrip,
    LiveEvent,
    TripCancellation,
    TripDelay,
    event_from_dict,
)
from repro.live.overlay import OverlayTimetable, PatchSet
from repro.live.taint import TaintAnalyzer, TaintReport
from repro.live.engine import LiveOverlayEngine, LiveQueryStats
from repro.live.feed import EventFeed, TimedEvent, replay, synthetic_feed

__all__ = [
    "LiveEvent",
    "TripDelay",
    "TripCancellation",
    "ExtraTrip",
    "event_from_dict",
    "PatchSet",
    "OverlayTimetable",
    "TaintAnalyzer",
    "TaintReport",
    "LiveOverlayEngine",
    "LiveQueryStats",
    "EventFeed",
    "TimedEvent",
    "synthetic_feed",
    "replay",
]
