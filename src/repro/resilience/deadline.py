"""Per-request wall-clock budgets, checked cooperatively.

A :class:`Deadline` is a fixed expiry instant on a monotonic clock.
The serving layer creates one per request and *installs* it in a
``contextvars.ContextVar`` scoped to the handling thread; the
expensive query loops (temporal Dijkstra relaxation, CSA scans,
profile enumeration) call :func:`check_deadline` every few hundred
iterations.  When the budget is gone the loop raises
:class:`~repro.errors.DeadlineExceeded`, unwinding out of the planner
— and, crucially, out of the service's planner lock — so one slow
query turns into a single 504 instead of a convoy.

The checks are deliberately cheap: with no deadline installed,
:func:`check_deadline` is one ``ContextVar.get`` (~100 ns); with one
installed it adds a single monotonic clock read.  Library code can
therefore call it unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded

Clock = Callable[[], float]

#: The deadline governing the current request, if any.  ContextVars
#: are per-thread by default, so every HTTP handler thread sees only
#: its own request's budget.
_ACTIVE: ContextVar[Optional["Deadline"]] = ContextVar(
    "repro_active_deadline", default=None
)


class Deadline:
    """A wall-clock budget with an injectable clock (for tests)."""

    __slots__ = ("budget_s", "expires_at", "_clock")

    def __init__(self, budget_s: float, clock: Clock = time.monotonic) -> None:
        self.budget_s = budget_s
        self._clock = clock
        self.expires_at = clock() + budget_s

    @classmethod
    def after_ms(cls, ms: float, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline ``ms`` milliseconds from now."""
        return cls(ms / 1000.0, clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self._clock() >= self.expires_at:
            raise DeadlineExceeded(
                f"request deadline exceeded "
                f"(budget {self.budget_s * 1000.0:.0f} ms)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f})"


def active_deadline() -> Optional[Deadline]:
    """The deadline installed for the current context, if any."""
    return _ACTIVE.get()


def check_deadline() -> None:
    """Cooperative check point for long-running loops.

    No-op when no deadline is installed; raises
    :class:`~repro.errors.DeadlineExceeded` when the active one has
    expired.
    """
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the duration of the ``with`` block.

    ``None`` leaves the context unchanged (so callers can pass an
    optional deadline without branching).
    """
    if deadline is None:
        yield None
        return
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)
