"""Circuit breaker over the live engine's exact query path.

The live overlay engine is exact but not uniformly fast: a heavy
disruption patch drives queries onto the temporal-Dijkstra fallback,
which is orders of magnitude slower than a label lookup and runs under
the service's planner lock.  The breaker watches the exact path's
outcome stream (latency + failures) and, once it degrades past a
threshold, *opens*: the service stops routing queries to the exact
path and instead serves TTL answers on the frozen base timetable —
microsecond-fast, lock-free, correct for the published schedule, and
flagged ``"degraded": true`` so clients know disruptions are not
reflected.  After a cooldown the breaker goes *half-open* and lets a
single probe query through; a healthy probe closes the circuit again.

States follow the classic pattern:

* ``closed``   — exact path serves; outcomes recorded in a sliding
  window; too many failures (slow or erroring queries) trip it open.
* ``open``     — exact path bypassed until ``cooldown_s`` elapses.
* ``half_open``— exactly one in-flight probe allowed; success closes,
  failure re-opens and restarts the cooldown.

The clock is injectable so tests drive transitions deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Optional

Clock = Callable[[], float]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker with half-open probing."""

    def __init__(
        self,
        window: int = 32,
        min_samples: int = 8,
        failure_threshold: float = 0.5,
        slow_threshold_s: float = 0.25,
        cooldown_s: float = 5.0,
        clock: Clock = time.monotonic,
    ) -> None:
        """Create the breaker.

        Args:
            window: sliding window size (outcomes remembered).
            min_samples: minimum outcomes before the breaker may trip.
            failure_threshold: failure share in the window that trips.
            slow_threshold_s: a success slower than this counts as a
                failure (latency degradation trips the breaker even
                when every query eventually finishes).
            cooldown_s: open duration before a half-open probe.
            clock: injectable monotonic clock (tests).
        """
        self.window = window
        self.min_samples = min_samples
        self.failure_threshold = failure_threshold
        self.slow_threshold_s = slow_threshold_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probe_inflight = False
        self._trips = 0
        self._probes = 0
        self._successes = 0
        self._failures = 0
        self._shorted = 0  # queries answered degraded while open

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow_exact(self) -> bool:
        """Should the caller use the exact (breaker-guarded) path?

        While open, returns False (and counts a shorted query) until
        the cooldown elapses; then exactly one caller is admitted as
        the half-open probe and everyone else keeps getting False
        until that probe's outcome is recorded.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = HALF_OPEN
                    self._probe_inflight = True
                    self._probes += 1
                    return True
                self._shorted += 1
                return False
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                self._shorted += 1
                return False
            self._probe_inflight = True
            self._probes += 1
            return True

    def record(
        self, latency_s: Optional[float] = None, failure: bool = False
    ) -> None:
        """Record one exact-path outcome.

        Args:
            latency_s: wall-clock duration of the query, if it
                finished; slower than ``slow_threshold_s`` counts as a
                failure.
            failure: the query failed outright (deadline exceeded,
                exception).
        """
        failed = failure or (
            latency_s is not None and latency_s > self.slow_threshold_s
        )
        with self._lock:
            if failed:
                self._failures += 1
            else:
                self._successes += 1
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                if failed:
                    self._state = OPEN
                    self._opened_at = self._clock()
                else:
                    self._state = CLOSED
                    self._outcomes.clear()
                return
            if self._state == OPEN:
                # Late result from a query that raced the trip; the
                # cooldown clock governs recovery, not stragglers.
                return
            self._outcomes.append(failed)
            if (
                len(self._outcomes) >= self.min_samples
                and sum(self._outcomes) / len(self._outcomes)
                >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1
                self._outcomes.clear()

    def snapshot(self) -> dict:
        """JSON-safe state dump."""
        with self._lock:
            return {
                "state": self._state,
                "window": self.window,
                "window_failures": sum(self._outcomes),
                "window_samples": len(self._outcomes),
                "trips": self._trips,
                "probes": self._probes,
                "successes": self._successes,
                "failures": self._failures,
                "degraded_served": self._shorted,
                "slow_threshold_s": self.slow_threshold_s,
                "cooldown_s": self.cooldown_s,
            }
