"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule` entries,
each naming an injection *site* — a string the serving layer fires at
well-known points — and what to do there: sleep (``latency``), raise
(``error``), or skew the deadline clock (``clock_skew``).  Rules fire
a bounded number of ``times`` (or forever) with a seeded
``probability``, so the same plan + seed reproduces the same failure
sequence run after run.  The chaos test suite and the hidden
``serve --chaos PLAN.json`` flag both build on this.

Injection sites fired by :class:`~repro.service.PlannerService` /
:class:`~repro.resilience.ResilientExecutor`:

* ``service.preprocess`` — during background warm-up (readiness 503s).
* ``service.request``    — before admission (handler-level latency).
* ``service.lock``       — immediately after taking the planner lock
  (a lock-hold spike: everyone else queues behind it).
* ``planner.query``      — around the planner call, inside the lock
  (a slow query; the post-call deadline check converts it to 504).
* ``live.exact``         — on the live engine's exact path only
  (feeds the circuit breaker failure stream).
* ``clock``              — consulted when deadlines are created; a
  positive skew shrinks every budget by that many seconds.

Plans are JSON round-trippable::

    {"seed": 7, "rules": [
        {"site": "planner.query", "kind": "latency",
         "seconds": 0.2, "times": 3},
        {"site": "clock", "kind": "clock_skew", "seconds": 10.0,
         "times": 2}
    ]}
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import FaultInjected

KINDS = ("latency", "error", "clock_skew")


@dataclass
class FaultRule:
    """One injection rule: what happens at ``site`` and how often."""

    site: str
    kind: str  # "latency" | "error" | "clock_skew"
    seconds: float = 0.0
    times: Optional[int] = None  # None = unlimited
    probability: float = 1.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind: {self.kind!r} (expected one of {KINDS})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")
        if self.seconds < 0:
            raise ValueError(f"negative fault seconds: {self.seconds}")

    def to_dict(self) -> dict:
        body: dict = {"site": self.site, "kind": self.kind}
        if self.seconds:
            body["seconds"] = self.seconds
        if self.times is not None:
            body["times"] = self.times
        if self.probability != 1.0:
            body["probability"] = self.probability
        if self.message != "injected fault":
            body["message"] = self.message
        return body

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be an object: {data!r}")
        unknown = set(data) - {
            "site", "kind", "seconds", "times", "probability", "message"
        }
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        try:
            return cls(
                site=str(data["site"]),
                kind=str(data["kind"]),
                seconds=float(data.get("seconds", 0.0)),
                times=(
                    int(data["times"]) if data.get("times") is not None
                    else None
                ),
                probability=float(data.get("probability", 1.0)),
                message=str(data.get("message", "injected fault")),
            )
        except KeyError as exc:
            raise ValueError(f"fault rule missing key: {exc}") from exc


@dataclass
class FaultPlan:
    """A seeded, ordered collection of fault rules."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("fault plan 'rules' must be a list")
        return cls(
            rules=[FaultRule.from_dict(entry) for entry in rules],
            seed=int(data.get("seed", 0)),
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` at named sites, deterministically.

    One injector instance holds the plan's RNG and per-rule remaining
    counts; the serving layer calls :meth:`fire` at each site and
    :meth:`clock_skew` when creating deadlines.  Thread-safe: the
    decision (which rules fire, count bookkeeping) happens under a
    lock, while the sleep itself happens outside it so injected
    latency does not serialize unrelated requests.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._remaining: List[Optional[int]] = [
            rule.times for rule in plan.rules
        ]
        self._fired: Dict[str, int] = {}

    def fire(self, site: str) -> None:
        """Run every armed rule matching ``site``.

        Latency rules sleep; error rules raise
        :class:`~repro.errors.FaultInjected`.  ``clock_skew`` rules are
        not consumed here (see :meth:`clock_skew`).
        """
        sleep_s = 0.0
        error: Optional[str] = None
        with self._lock:
            for i, rule in enumerate(self.plan.rules):
                if rule.site != site or rule.kind == "clock_skew":
                    continue
                if self._remaining[i] == 0:
                    continue
                if rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                if self._remaining[i] is not None:
                    self._remaining[i] -= 1
                self._fired[site] = self._fired.get(site, 0) + 1
                if rule.kind == "latency":
                    sleep_s += rule.seconds
                else:
                    error = f"{rule.message} (site {site})"
        if sleep_s > 0.0:
            self._sleep(sleep_s)
        if error is not None:
            raise FaultInjected(error)

    def clock_skew(self, site: str = "clock") -> float:
        """Consume one matching ``clock_skew`` rule; returns seconds.

        The caller subtracts the skew from the request budget,
        emulating a wall clock that jumped forward.
        """
        skew = 0.0
        with self._lock:
            for i, rule in enumerate(self.plan.rules):
                if rule.site != site or rule.kind != "clock_skew":
                    continue
                if self._remaining[i] == 0:
                    continue
                if rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                if self._remaining[i] is not None:
                    self._remaining[i] -= 1
                self._fired[site] = self._fired.get(site, 0) + 1
                skew += rule.seconds
        return skew

    def snapshot(self) -> dict:
        """Per-site fire counts plus remaining rule budgets."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "rules": len(self.plan.rules),
                "fired": dict(self._fired),
                "remaining": [
                    r if r is not None else "unlimited"
                    for r in self._remaining
                ],
            }


def load_fault_plan(path: str) -> FaultPlan:
    """Read a JSON fault plan from disk (``serve --chaos PLAN``)."""
    with open(path) as fh:
        return FaultPlan.from_json(fh.read())


__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan",
]
