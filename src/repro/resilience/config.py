"""Serving-resilience configuration.

One dataclass gathers every knob so the CLI, the service, and the
benchmarks construct identical pipelines.  The defaults are
deliberately permissive — a 2 s deadline and a 64-deep gate never
trigger in the test-suite's microsecond workloads — so wrapping a
planner in a :class:`~repro.service.PlannerService` with no explicit
config changes no observable behavior, only adds the guard rails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ResilienceConfig:
    """Knobs for deadlines, admission control, and the breaker."""

    #: Master switch.  ``False`` serves queries the pre-resilience way
    #: (no deadline, no gate, no breaker) — used by the overhead
    #: benchmark's baseline and as an escape hatch.
    enabled: bool = True

    #: Per-request wall-clock budget in milliseconds; ``None`` disables
    #: deadlines while keeping the rest of the layer.
    deadline_ms: Optional[float] = 2000.0

    # Admission control -------------------------------------------------
    #: Concurrent query requests admitted before shedding with 429.
    max_inflight: int = 64
    #: ``Retry-After`` hint (seconds) on 429 and shedding 503s.
    retry_after_s: float = 1.0
    #: How long readiness keeps reporting "shedding" after a shed.
    shed_grace_s: float = 1.0

    # Circuit breaker (live engines only) -------------------------------
    #: Construct a breaker when the planner is a live overlay engine.
    breaker_enabled: bool = True
    breaker_window: int = 32
    breaker_min_samples: int = 8
    breaker_failure_threshold: float = 0.5
    #: Exact-path latency above which a query counts as a failure.
    breaker_slow_s: float = 0.25
    #: Open duration before a half-open probe is allowed.
    breaker_cooldown_s: float = 5.0

    # Answer cache -------------------------------------------------------
    #: Per-worker hot-pair answer cache capacity in entries; ``0``
    #: (the default) disables caching entirely, keeping the
    #: pre-cache pipeline byte for byte.  See
    #: :class:`repro.serving.cache.AnswerCache` / docs/serving.md.
    cache_size: int = 0
    #: Departure-time bucket (seconds) used in cache keys — the
    #: granularity hot-pair grouping and invalidation sweeps reason at.
    cache_bucket_s: int = 900

    # Prefork live coordination ------------------------------------------
    #: Seconds a draining supervisor grants each worker to finish its
    #: in-flight requests after SIGTERM before escalating to SIGKILL.
    drain_grace_s: float = 5.0
    #: Worker journal-follower poll interval (seconds): the upper
    #: bound one *idle* poll adds to fan-out latency; a follower that
    #: just applied a record immediately re-polls for the next.
    journal_poll_s: float = 0.05

    # Input hardening ----------------------------------------------------
    #: Largest accepted request body; beyond it the service answers 413.
    max_body_bytes: int = 1 << 20
    #: Largest (source, target) workload a single ``POST /v1/batch``
    #: may request: ``len(sources) * len(targets)`` for matrices,
    #: ``len(targets)`` for one-to-many, ``n`` for isochrones.  Beyond
    #: it the service answers 400 with ``field`` naming the culprit.
    max_batch_pairs: int = 10000
