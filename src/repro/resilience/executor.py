"""The guarded query pipeline: admission -> deadline -> breaker.

:class:`ResilientExecutor` is the single choke point every service
query passes through.  Keeping it out of ``service.py`` means the
latency-overhead benchmark can measure exactly the machinery a request
pays for (no HTTP in the way) and unit tests can drive it without a
socket.

Pipeline per call (see :meth:`run`):

1. fire the ``service.request`` injection site (chaos latency);
2. admit through the in-flight gate or shed with 429;
3. create the request :class:`~repro.resilience.deadline.Deadline`
   (minus any injected clock skew) and install it for the thread;
4. consult the circuit breaker: when open, answer via the degraded
   function (lock-free frozen-graph TTL) and flag it;
5. otherwise run the exact function — under the planner lock when one
   is given — with fault sites ``service.lock`` / ``planner.query`` /
   ``live.exact`` fired inside, deadline checks before and after, and
   the outcome (latency or failure) recorded into the breaker.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Tuple

from repro.errors import DeadlineExceeded, FaultInjected
from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.faults import FaultInjector

Clock = Callable[[], float]


class ResilientExecutor:
    """Runs planner calls behind the full resilience pipeline."""

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        breaker: Optional[CircuitBreaker] = None,
        injector: Optional[FaultInjector] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            retry_after_s=self.config.retry_after_s,
            shed_grace_s=self.config.shed_grace_s,
            clock=clock,
        )
        self.breaker = breaker
        self.injector = injector
        self._clock = clock
        self._deadline_hits = 0
        self._degraded_served = 0

    # ------------------------------------------------------------------

    def make_breaker(self) -> CircuitBreaker:
        """Construct the breaker this config describes (live engines)."""
        cfg = self.config
        return CircuitBreaker(
            window=cfg.breaker_window,
            min_samples=cfg.breaker_min_samples,
            failure_threshold=cfg.breaker_failure_threshold,
            slow_threshold_s=cfg.breaker_slow_s,
            cooldown_s=cfg.breaker_cooldown_s,
            clock=self._clock,
        )

    def _fire(self, site: str) -> None:
        if self.injector is not None:
            self.injector.fire(site)

    def _make_deadline(self) -> Optional[Deadline]:
        ms = self.config.deadline_ms
        if ms is None:
            return None
        if self.injector is not None:
            ms = ms - self.injector.clock_skew() * 1000.0
        return Deadline.after_ms(ms)

    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable[[], Any],
        lock: Optional[threading.RLock] = None,
        degraded_fn: Optional[Callable[[], Any]] = None,
    ) -> Tuple[Any, bool]:
        """Execute ``fn`` behind the pipeline.

        Args:
            fn: the exact planner call.
            lock: service planner lock to hold around ``fn``.
            degraded_fn: lock-free frozen-graph fallback used while
                the breaker is open.  Its presence marks ``fn`` as a
                breaker-guarded live exact path.

        Returns:
            ``(result, degraded)`` — ``degraded`` is True when the
            answer came from ``degraded_fn``.

        Raises:
            Overloaded: shed by admission control (429).
            DeadlineExceeded: budget expired (504).
            FaultInjected: an injected internal error (500).
        """
        if not self.config.enabled:
            if lock is not None:
                with lock:
                    return fn(), False
            return fn(), False

        self._fire("service.request")
        with self.admission.admit():
            deadline = self._make_deadline()
            with deadline_scope(deadline):
                try:
                    if deadline is not None:
                        deadline.check()
                    breaker = self.breaker if degraded_fn is not None else None
                    if breaker is not None and not breaker.allow_exact():
                        self._degraded_served += 1
                        return degraded_fn(), True
                    start = self._clock()
                    try:
                        if lock is not None:
                            with lock:
                                self._fire("service.lock")
                                if deadline is not None:
                                    deadline.check()
                                self._fire("planner.query")
                                if breaker is not None:
                                    self._fire("live.exact")
                                result = fn()
                        else:
                            self._fire("planner.query")
                            if breaker is not None:
                                self._fire("live.exact")
                            result = fn()
                        if deadline is not None:
                            deadline.check()
                    except (DeadlineExceeded, FaultInjected):
                        if breaker is not None:
                            breaker.record(failure=True)
                        raise
                    if breaker is not None:
                        breaker.record(latency_s=self._clock() - start)
                    return result, False
                except DeadlineExceeded:
                    self._deadline_hits += 1
                    raise

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe pipeline state for ``/resilience`` and /metrics."""
        body = {
            "enabled": self.config.enabled,
            "deadline_ms": self.config.deadline_ms,
            "deadline_exceeded": self._deadline_hits,
            "degraded_served": self._degraded_served,
            "admission": self.admission.snapshot(),
        }
        if self.breaker is not None:
            body["breaker"] = self.breaker.snapshot()
        if self.injector is not None:
            body["faults"] = self.injector.snapshot()
        return body
