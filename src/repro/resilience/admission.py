"""Bounded in-flight admission control (load shedding).

The gate is a non-blocking counting semaphore: at most ``max_inflight``
query requests execute at once, and request ``max_inflight + 1``
is *shed* immediately with :class:`~repro.errors.Overloaded` (HTTP
429 + ``Retry-After``) instead of queueing behind a saturated planner
lock.  Shedding also flips the service readiness signal: a load
balancer polling ``/healthz/ready`` sees 503 while the gate is full
or has shed recently, steering traffic to healthier replicas.

The hot path is one uncontended semaphore acquire/release pair
(~1 microsecond); bookkeeping beyond that happens only on shed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import Overloaded

Clock = Callable[[], float]


class AdmissionController:
    """Sheds query load beyond a fixed in-flight watermark."""

    def __init__(
        self,
        max_inflight: int = 64,
        retry_after_s: float = 1.0,
        shed_grace_s: float = 1.0,
        clock: Clock = time.monotonic,
    ) -> None:
        """Create the gate.

        Args:
            max_inflight: concurrent requests admitted before shedding.
            retry_after_s: ``Retry-After`` hint attached to sheds.
            shed_grace_s: readiness stays "shedding" this long after
                the most recent shed, so health probes reliably observe
                overload even between sheds.
            clock: injectable monotonic clock (tests).
        """
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.shed_grace_s = shed_grace_s
        self._clock = clock
        self._sem = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._admitted = 0
        self._shed = 0
        self._last_shed_at = float("-inf")

    # ------------------------------------------------------------------

    def acquire(self) -> None:
        """Admit the current request or raise :class:`Overloaded`."""
        if not self._sem.acquire(blocking=False):
            with self._lock:
                self._shed += 1
                self._last_shed_at = self._clock()
            raise Overloaded(
                f"too many in-flight requests "
                f"(limit {self.max_inflight}); retry later",
                retry_after=self.retry_after_s,
            )
        with self._lock:
            self._admitted += 1
            self._inflight += 1
            if self._inflight > self._peak_inflight:
                self._peak_inflight = self._inflight

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1
        self._sem.release()

    @contextmanager
    def admit(self) -> Iterator[None]:
        """``with gate.admit():`` — acquire or shed, always release."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def shedding(self) -> bool:
        """True while the gate is full or shed within the grace window.

        Readiness probes report 503 while this holds.
        """
        if self._inflight >= self.max_inflight:
            return True
        return (self._clock() - self._last_shed_at) < self.shed_grace_s

    def snapshot(self) -> dict:
        """JSON-safe counter dump."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "admitted": self._admitted,
                "shed": self._shed,
                "shedding": self.shedding,
            }
