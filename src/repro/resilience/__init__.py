"""Serving robustness: deadlines, shedding, breaking, chaos.

The paper's serving story — microsecond label lookups behind an HTTP
front end — survives production only with guard rails.  This package
provides them, independent of any planner:

* :mod:`~repro.resilience.deadline` — per-request wall-clock budgets
  checked cooperatively inside the expensive query loops, so an
  expired query raises instead of hogging the planner lock (504).
* :mod:`~repro.resilience.admission` — a bounded in-flight gate that
  sheds excess load immediately (429 + ``Retry-After``) and drives
  the readiness signal while saturated (503).
* :mod:`~repro.resilience.breaker` — a circuit breaker over the live
  engine's exact path; tripped, the service answers from the frozen
  TTL index (fast, lock-free, flagged ``"degraded": true``) and probes
  its way back to exact answers.
* :mod:`~repro.resilience.faults` — seeded, deterministic fault
  injection (latency, errors, lock-hold spikes, clock skew) so the
  chaos suite can prove each failure maps to its documented status.
* :mod:`~repro.resilience.executor` — the pipeline composing all of
  the above, shared by the HTTP service and the overhead benchmark.

See ``docs/resilience.md`` for semantics and the status-code table.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.deadline import (
    Deadline,
    active_deadline,
    check_deadline,
    deadline_scope,
)
from repro.resilience.executor import ResilientExecutor
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ResilienceConfig",
    "ResilientExecutor",
    "Deadline",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "load_fault_plan",
]
