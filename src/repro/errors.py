"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    Every library error can carry an optional ``hint`` — a short,
    actionable suggestion surfaced verbatim in HTTP error payloads
    (the uniform ``{"error", "field", "hint"}`` shape) and on the CLI's
    stderr.  ``None`` means "the message is self-explanatory".
    """

    def __init__(self, *args: object, hint: "str | None" = None) -> None:
        super().__init__(*args)
        self.hint = hint


class GraphError(ReproError):
    """Raised when a timetable graph is malformed or violates an invariant."""


class ValidationError(GraphError):
    """Raised when validating user-supplied graph input fails."""


class UnknownStationError(GraphError):
    """Raised when a station id or name does not exist in the graph."""

    def __init__(self, station: object) -> None:
        super().__init__(f"unknown station: {station!r}")
        self.station = station


class UnknownTripError(GraphError):
    """Raised when a trip id does not exist in the graph."""

    def __init__(self, trip: object) -> None:
        super().__init__(f"unknown trip: {trip!r}")
        self.trip = trip


class UnknownRouteError(GraphError):
    """Raised when a route id does not exist in the graph."""

    def __init__(self, route: object) -> None:
        super().__init__(f"unknown route: {route!r}")
        self.route = route


class IndexError_(ReproError):
    """Base class for index construction and query errors.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``.
    """


class IndexBuildError(IndexError_):
    """Raised when TTL index construction fails."""


class ReconstructionError(IndexError_):
    """Raised when a label cannot be unfolded back into a concrete path."""


class BuildFarmError(IndexError_):
    """Raised when the parallel build pipeline fails (bad plan, worker
    death, checkpoint/graph mismatch...)."""


class BuildAborted(BuildFarmError):
    """Raised when a build is deliberately aborted mid-pipeline (the
    ``fail_after_chunks`` test hook); completed shards stay on disk so
    the build can be resumed."""

    def __init__(self, chunks_done: int) -> None:
        super().__init__(
            f"build aborted after {chunks_done} committed chunks"
        )
        self.chunks_done = chunks_done


class QueryError(ReproError):
    """Raised for invalid query arguments (bad window, unknown nodes...)."""


class UnsupportedQueryError(QueryError):
    """Raised when a planner does not implement a query type.

    The unified :meth:`~repro.planner.RoutePlanner.plan` entry point
    accepts every query type for every planner; backends that cannot
    answer one (e.g. profile enumeration on a method with no label
    sets) raise this instead of ``AttributeError``, so callers can
    branch on capability with one typed ``except``.
    """

    def __init__(self, planner: str, query_type: str) -> None:
        super().__init__(
            f"planner {planner!r} does not support {query_type!r} queries",
            hint="query a labelling-based planner (TTL, C-TTL) instead",
        )
        self.planner = planner
        self.query_type = query_type


class SerializationError(ReproError):
    """Raised when loading or saving an index or graph fails."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset specification is invalid."""


class LiveEventError(ReproError):
    """Raised when a live schedule event is malformed or inapplicable."""


class FederationError(ReproError):
    """Raised when region partitioning, a federation manifest, or a
    cross-region stitched query is invalid (bad region map, digest
    mismatch, shard missing a queried station...)."""


class ResilienceError(ReproError):
    """Base class for serving-robustness failures (deadlines, load
    shedding, readiness).  These carry a well-defined HTTP status so
    the service can map them without string matching."""


class DeadlineExceeded(ResilienceError):
    """Raised when a request's wall-clock budget expires (HTTP 504).

    Checked cooperatively inside the expensive query loops, so an
    expired query aborts and releases the planner lock instead of
    running to completion.
    """


class Overloaded(ResilienceError):
    """Raised when admission control sheds a request (HTTP 429).

    ``retry_after`` is the suggested client back-off in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceNotReady(ResilienceError):
    """Raised when the service cannot serve yet or sheds for health
    reasons (HTTP 503).  ``retry_after`` suggests when to retry."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestValidationError(ReproError):
    """Raised when an HTTP request parameter is missing or malformed
    (HTTP 400).  ``field`` names the offending parameter."""

    def __init__(
        self, message: str, field: str, hint: "str | None" = None
    ) -> None:
        super().__init__(message, hint=hint)
        self.field = field


class ConflictError(ReproError):
    """Raised when a request conflicts with how serving is coordinated
    (HTTP 409) — e.g. a live mutation POSTed directly to a prefork
    worker, which must instead go through the supervisor's journalled
    endpoint so every worker sees it."""


class PayloadTooLarge(ReproError):
    """Raised when an HTTP request body exceeds the size cap (413)."""


class FaultInjected(ReproError):
    """A failure deliberately injected by an active
    :class:`~repro.resilience.FaultPlan` (maps to HTTP 500: it stands
    in for an unexpected internal error)."""
