"""Command-line interface: ``repro-ttl``.

Subcommands:

* ``datasets``                 — list the dataset catalogue.
* ``info NAME``                — characteristics of one dataset.
* ``generate NAME DIR``        — write a dataset as a CSV bundle.
* ``build NAME INDEX``         — build a TTL index and save it
  (``--regions K`` builds a *federation directory* instead: per-region
  shards, border index, ``TTLFED01`` manifest).
* ``partition NAME``           — preview a region partition (sizes,
  cut connections, border stops) without building anything.
* ``query NAME KIND U V ...``  — answer one query with every method.
* ``bench EXPERIMENT``         — run one paper experiment and print
  its table (``table3``, ``fig3``–``fig10``, ``table4`` or ``all``).
* ``verify NAME INDEX``        — fsck a saved index against its graph.
* ``profile NAME U V``         — all non-dominated journeys in a window.
* ``analyze NAME``             — label distribution + hub/reachability
  reports.
* ``report [-o FILE]``         — run all experiments, emit a markdown
  reproduction report with shape verdicts.
* ``serve NAME``               — HTTP JSON API over a TTL planner
  (``--live`` serves a disruption-aware engine with ``/live/*``;
  ``--workers K --mmap --index FILE`` preforks K processes sharing
  one memory-mapped index behind one listening socket;
  ``--federation DIR`` serves a federation: one worker per region
  shard behind a stitching router).
* ``live NAME``                — replay a disruption feed against the
  live overlay engine and report fast-path / fallback statistics.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from typing import List, Optional

from repro.baselines import CHTPlanner, CSAPlanner
from repro.bench.harness import BenchConfig, PlannerCache
from repro.core import (
    CompressedTTLPlanner,
    TTLPlanner,
    build_index,
    load_index,
    save_index,
)
from repro.algorithms import DijkstraPlanner
from repro.datasets import DATASETS, dataset_names, load_dataset
from repro.errors import QueryError
from repro.graph import save_graph_csv
from repro.query import QueryRequest
from repro.timeutil import format_duration, format_time, parse_time


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    """``--scale`` plus ``--seed`` for commands that load one dataset.

    (The ``live`` subcommand keeps its own ``--seed`` for the
    disruption feed, so it takes only ``--scale``.)
    """
    _add_scale(parser)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the dataset's catalogue seed (reproducible "
        "alternate instances of the same network family)",
    )


def _cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'kind':8s} {'stations':>8s} {'routes':>6s}")
    for name in dataset_names():
        info = DATASETS[name]
        print(
            f"{info.name:12s} {info.kind:8s} {info.stations:8d} "
            f"{info.routes:6d}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    stats = graph.stats()
    print(f"dataset      {args.name} (scale {args.scale})")
    print(f"stations     {stats.num_stations}")
    print(f"connections  {stats.num_connections}")
    print(f"trips        {stats.num_trips}")
    print(f"routes       {stats.num_routes}")
    print(
        f"service      {format_time(stats.min_time)} - "
        f"{format_time(stats.max_time)}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    save_graph_csv(graph, args.directory)
    print(f"wrote {graph.n} stations / {graph.m} connections to "
          f"{args.directory}")
    return 0


def _resolve_partition(graph, args: argparse.Namespace):
    """Partition per the shared --regions/--from-names/--region-seed
    flags (``partition`` and ``build --regions``)."""
    from repro.errors import FederationError
    from repro.federation import partition_graph, region_map_from_names

    if args.from_names:
        partition = region_map_from_names(graph)
        if partition is None:
            raise FederationError(
                "dataset station names carry no region tags",
                hint="--from-names needs /r<i>/ or /c<i>/ name "
                "segments (TwinCities, RheinRuhr, Sweden); use "
                "--regions K for the min-cut heuristic instead",
            )
        return partition
    return partition_graph(graph, args.regions, seed=args.region_seed)


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    partition = _resolve_partition(graph, args)
    borders = partition.border_stops(graph)
    print(f"dataset      {args.name} (scale {args.scale})")
    print(f"regions      {partition.num_regions} "
          f"(sizes {partition.sizes()})")
    print(f"cut          {partition.cut_size(graph)} of {graph.m} "
          f"connections")
    print(f"border stops {len(borders)} of {graph.n} stations")
    print(f"digest       {partition.digest()[:16]}")
    if args.verbose:
        for stop in borders:
            print(f"  border {stop:5d}  region "
                  f"{partition.region_of[stop]}  "
                  f"{graph.station_name(stop)}")
    return 0


def _cmd_build_federation(args: argparse.Namespace, graph) -> int:
    from repro.federation import build_federation

    partition = _resolve_partition(graph, args)
    manifest = build_federation(
        graph,
        partition,
        args.index,
        order=args.order,
        jobs=args.jobs,
        dataset={
            "name": args.name,
            "scale": args.scale,
            "seed": args.seed,
        },
        progress=print,
    )
    for entry in manifest.regions:
        print(f"region {entry.region}  {len(entry.stops):5d} stations  "
              f"{entry.labels:7d} labels  {entry.path}")
    print(f"border stops {len(manifest.border_stops)}")
    print(f"epoch        {manifest.epoch}")
    print(f"saved to     {args.index}/federation.json")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    if args.regions is not None or args.from_names:
        return _cmd_build_federation(args, graph)

    use_farm = (
        args.jobs > 1
        or args.checkpoint_dir is not None
        or args.resume
    )
    if use_farm:
        from repro.buildfarm import build_index_parallel

        def farm_progress(snapshot) -> None:
            print(
                f"\r  [{snapshot.phase:7s}] "
                f"chunks {snapshot.chunks_done}/{snapshot.chunks_total}  "
                f"hubs {snapshot.hubs_done}/{snapshot.hubs_total}  "
                f"labels {snapshot.labels_committed} "
                f"({snapshot.labels_per_second:.0f}/s)",
                end="",
                flush=True,
            )

        index = build_index_parallel(
            graph,
            order=args.order,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            progress=farm_progress,
            mp_start=args.mp_start,
            fail_after_chunks=args.fail_after_chunks,
        )
        print()
    else:

        def progress(done: int, total: int) -> None:
            if done % max(1, total // 20) == 0 or done == total:
                print(
                    f"\r  building: {done}/{total} hubs", end="", flush=True
                )

        index = build_index(graph, order=args.order, progress=progress)
        print()
    save_index(index, args.index)
    stats = index.stats()
    build = index.build_stats
    print(f"labels       {stats.num_labels}")
    print(f"avg/node     {stats.avg_labels_per_node:.1f}")
    if build is not None:
        print(f"build time   {build.seconds:.2f}s")
        if use_farm:
            print(
                f"pipeline     jobs {build.extra.get('jobs')}  "
                f"chunks {build.extra.get('chunks')}  "
                f"resumed {build.extra.get('chunks_resumed')}"
            )
    print(f"saved to     {args.index}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    planners = [
        DijkstraPlanner(graph),
        CSAPlanner(graph),
        CHTPlanner(graph),
    ]
    if args.index:
        index = load_index(args.index, graph)
        planners.append(TTLPlanner(graph, index=index))
    else:
        planners.append(TTLPlanner(graph))
    planners.append(CompressedTTLPlanner(graph))

    t = parse_time(args.start) if args.start else None
    t_end = parse_time(args.end) if args.end else None
    needs = {"eap": "--start", "ldp": "--end", "sdp": "--start and --end"}
    request = QueryRequest(
        args.kind,
        args.source,
        args.dest,
        t=None if args.kind == "ldp" else t,
        t_end=t_end,
    )
    try:
        request.validated()
    except QueryError:
        print(f"{args.kind} requires {needs[args.kind]}", file=sys.stderr)
        return 2
    for planner in planners:
        planner.preprocess()
        journey = planner.plan(request).journey
        if journey is None:
            print(f"{planner.name:9s} no feasible journey")
        else:
            print(
                f"{planner.name:9s} dep {format_time(journey.dep)}  "
                f"arr {format_time(journey.arr)}  "
                f"({format_duration(journey.duration)}, "
                f"{journey.transfers} transfers)"
            )
    if args.stats:
        print()
        print("per-planner query metrics:")
        for planner in planners:
            metrics = getattr(planner, "metrics", None)
            if metrics is None:
                continue
            snap = metrics.snapshot()
            counters = "  ".join(
                f"{key}={value}" for key, value in snap.items()
            )
            print(f"{planner.name:9s} {counters}")
    return 0


_EXPERIMENTS = {
    "table3": "table3_datasets",
    "fig3": "figure3_sdp",
    "fig4": "figure4_space",
    "fig5": "figure5_preprocessing",
    "table4": "table4_compression",
    "fig6": "figure6_eap",
    "fig7": "figure7_ldp",
    "fig8": "figure8_construction",
    "fig9": "figure9_order_size",
    "fig10": "figure10_order_time",
}


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments

    config = BenchConfig.from_env()
    config.scale = args.scale
    if args.datasets:
        config.datasets = args.datasets.split(",")
    if args.queries:
        config.num_queries = args.queries
    cache = PlannerCache(config)

    names = list(_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        attr = _EXPERIMENTS.get(name)
        if attr is None:
            print(f"unknown experiment: {name}", file=sys.stderr)
            return 2
        result = getattr(experiments, attr)(cache)
        print(result)
        print()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.verify import verify_index

    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    index = load_index(args.index, graph)
    report = verify_index(
        index,
        label_samples=args.samples,
        query_samples=args.samples,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.timeutil import format_duration, format_time as fmt

    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    planner = TTLPlanner(graph)
    t = parse_time(args.start)
    t_end = parse_time(args.end)
    pairs = planner.profile(args.source, args.dest, t, t_end)
    if not pairs:
        print("no feasible journeys in the window")
        return 0
    print(f"{'depart':>9s} {'arrive':>9s} {'duration':>9s}")
    for dep, arr in pairs:
        print(f"{fmt(dep):>9s} {fmt(arr):>9s} "
              f"{format_duration(arr - dep):>9s}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        hub_report,
        label_distribution,
        reachability_report,
    )
    from repro.core import build_index

    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    print(reachability_report(graph).render())
    index = build_index(graph)
    print()
    print(label_distribution(index).render())
    print()
    print(hub_report(index).render(graph))
    return 0


def _cmd_serve_federation(args: argparse.Namespace, graph, config) -> int:
    from repro.federation.serve import FederationSupervisor

    manifest_path = args.federation
    if os.path.isdir(manifest_path):
        manifest_path = os.path.join(manifest_path, "federation.json")
    supervisor = FederationSupervisor(
        graph,
        manifest_path,
        resilience=config,
        host=args.host,
        port=args.port,
        mmap=True,
    )
    port = supervisor.start()
    supervisor.wait_ready()
    print(
        f"serving {args.name} federation on http://{args.host}:{port} "
        f"with {supervisor.manifest.num_regions} region workers "
        f"(epoch {supervisor.manifest.epoch}; intra-region queries "
        "proxied to the owning shard, cross-region stitched through "
        "the border index; Ctrl-C stops, SIGTERM drains)",
        flush=True,
    )
    for region, worker_port in sorted(supervisor.worker_ports.items()):
        print(f"  region {region} worker on port {worker_port}")

    import signal as _signal

    drain_requested = threading.Event()
    _signal.signal(
        _signal.SIGTERM, lambda signum, frame: drain_requested.set()
    )
    try:
        while not drain_requested.wait(timeout=1.0):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive
        supervisor.stop()
        return 0
    clean = supervisor.drain(grace_s=config.drain_grace_s)
    print("drained" if clean else "drain escalated to SIGKILL", flush=True)
    return 0 if clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience import ResilienceConfig, load_fault_plan
    from repro.service import PlannerService

    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    if args.mmap and not args.index and not args.federation:
        print(
            "error: --mmap requires --index FILE (a saved TTLIDX03 "
            "index; build one with 'repro-ttl build')",
            file=sys.stderr,
        )
        return 2
    config = ResilienceConfig(
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        max_inflight=args.max_inflight,
        cache_size=args.cache_size,
        drain_grace_s=args.drain_grace,
    )
    fault_plan = load_fault_plan(args.chaos) if args.chaos else None

    if args.federation:
        return _cmd_serve_federation(args, graph, config)

    if args.workers > 1:
        from repro.serving import (
            ServingSupervisor,
            live_mapped_planner_factory,
            mapped_planner_factory,
        )

        journal_path = None
        if args.live:
            # Live prefork: the supervisor owns a durable journal;
            # workers tail it, so every overlay converges.
            journal_path = args.journal
            if journal_path is None:
                import tempfile

                fd, journal_path = tempfile.mkstemp(
                    prefix="repro-journal-", suffix=".wal"
                )
                os.close(fd)
                os.unlink(journal_path)
        if args.index and args.mmap:
            # One full digest pass up front; workers then map the
            # verified file lazily (verify=False keeps their cold
            # start O(header) instead of faulting every page in).
            load_index(args.index, graph, mmap=True, verify=True)
            if args.live:
                factory = live_mapped_planner_factory(
                    graph, args.index, verify=False
                )
            else:
                factory = mapped_planner_factory(
                    graph, args.index, verify=False
                )
            sharing = "mmap-shared index"
        else:
            if args.index:
                index = load_index(args.index, graph)
            else:
                index = build_index(graph)
            # Forked workers inherit the heap index copy-on-write.
            if args.live:
                from repro.live import LiveOverlayEngine

                factory = lambda: LiveOverlayEngine(  # noqa: E731
                    graph, index=index
                )
            else:
                factory = lambda: TTLPlanner(  # noqa: E731
                    graph, index=index
                )
            sharing = "copy-on-write heap index"
        supervisor = ServingSupervisor(
            factory,
            workers=args.workers,
            resilience=config,
            fault_plan=fault_plan,
            host=args.host,
            port=args.port,
            journal_path=journal_path,
            control_port=args.control_port,
        )
        port = supervisor.start()
        supervisor.wait_ready()
        if fault_plan is not None:
            print(
                f"chaos plan active: {len(fault_plan.rules)} rules, "
                f"seed {fault_plan.seed}"
            )
        print(
            f"serving {args.name} on http://{args.host}:{port} with "
            f"{args.workers} workers ({sharing}; /v1 endpoints; "
            "Ctrl-C stops, SIGTERM drains)",
            flush=True,
        )
        if args.live:
            print(
                f"live mutations via {supervisor.coordinator_url} "
                f"(journal: {journal_path}); workers answer 409 and "
                "point there",
                flush=True,
            )

        # SIGTERM = graceful drain: stop accepting, finish in-flight
        # requests within the grace window, fsync the journal, exit 0.
        import signal as _signal

        drain_requested = threading.Event()
        _signal.signal(
            _signal.SIGTERM, lambda signum, frame: drain_requested.set()
        )
        try:
            while not drain_requested.wait(timeout=1.0):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            supervisor.stop()
            return 0
        clean = supervisor.drain(grace_s=config.drain_grace_s)
        print(
            "drained" if clean else "drain escalated to SIGKILL",
            flush=True,
        )
        return 0 if clean else 1

    if args.live:
        from repro.live import LiveOverlayEngine

        planner = LiveOverlayEngine(graph)
        endpoints = (
            "/stations /eap /ldp /sdp /healthz /metrics /resilience "
            "/live/events /live/stats /live/advance /live/clear"
        )
    else:
        if args.index:
            index = load_index(args.index, graph, mmap=args.mmap)
            planner = TTLPlanner(graph, index=index)
        else:
            planner = TTLPlanner(graph, build_jobs=args.build_jobs)
        endpoints = (
            "/stations /eap /ldp /sdp /profile /healthz /metrics "
            "/resilience"
        )
    service = PlannerService(planner, resilience=config, fault_plan=fault_plan)
    port = service.start(host=args.host, port=args.port, warm=not args.no_warm)
    if args.no_warm:
        print("index building in the background; /healthz shows progress")
    if fault_plan is not None:
        print(
            f"chaos plan active: {len(fault_plan.rules)} rules, "
            f"seed {fault_plan.seed}"
        )
    print(f"serving {args.name} on http://{args.host}:{port} "
          f"(endpoints, preferably under /v1: {endpoints}; "
          f"Ctrl-C stops)",
          flush=True)
    try:
        import time as _time

        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        service.stop()
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.datasets import QueryWorkload
    from repro.live import (
        EventFeed,
        LiveOverlayEngine,
        replay,
        synthetic_feed,
    )

    graph = load_dataset(args.name, scale=args.scale)
    engine = LiveOverlayEngine(graph)
    engine.preprocess()
    if args.feed:
        with open(args.feed) as fh:
            feed = EventFeed.from_json(fh.read())
    else:
        feed = synthetic_feed(graph, rate=args.rate, seed=args.seed)
    applied = 0
    for at, event, event_id in replay(engine, feed):
        applied += 1
        if args.verbose:
            print(f"  t={format_time(at)}  #{event_id}  {event.to_dict()}")
    taint = engine.taint_report()
    print(f"dataset      {args.name} (scale {args.scale})")
    print(f"events       {applied} applied, {len(engine.events())} active")
    print(f"tainted      {taint.num_tainted}/{taint.num_labels} labels "
          f"({100.0 * taint.fraction:.1f}%)")

    from repro.bench.harness import query_request

    queries = QueryWorkload(graph, seed=args.seed).generate(args.queries)
    kinds = ("eap", "ldp", "sdp")
    for i, query in enumerate(queries):
        engine.plan(query_request(query, kinds[i % 3]))
    stats = engine.stats
    print(f"queries      {stats.queries} "
          f"(mixed eap/ldp/sdp, seed {args.seed})")
    print(f"fast path    {stats.fast_path} ({100.0 * stats.fast_path_rate:.1f}%)")
    print(f"fallbacks    {stats.fallbacks} "
          f"(taint {stats.fallback_taint}, "
          f"improvement {stats.fallback_improvement}, "
          f"flood {stats.fallback_flood})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import generate_report

    config = BenchConfig.from_env()
    config.scale = args.scale
    if args.datasets:
        config.datasets = args.datasets.split(",")
    if args.queries:
        config.num_queries = args.queries
    report = generate_report(PlannerCache(config))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ttl",
        description="Timetable Labelling (SIGMOD 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset catalogue")

    p = sub.add_parser("info", help="show dataset characteristics")
    p.add_argument("name")
    _add_dataset_args(p)

    p = sub.add_parser("generate", help="write a dataset as CSV")
    p.add_argument("name")
    p.add_argument("directory")
    _add_dataset_args(p)

    p = sub.add_parser("build", help="build and save a TTL index")
    p.add_argument("name")
    p.add_argument("index", help="output index file")
    p.add_argument("--order", default="hub")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the build farm (1 = in-process)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="hubs per build-farm chunk (default: auto from --jobs)",
    )
    p.add_argument(
        "--checkpoint-dir",
        help="persist per-chunk shards here; an interrupted build can "
        "be continued with --resume",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from a matching checkpoint in --checkpoint-dir",
    )
    # Hidden: deterministic mid-build abort + start-method override,
    # used by the kill-and-resume tests and the CI smoke job.
    p.add_argument(
        "--fail-after-chunks", type=int, default=None, help=argparse.SUPPRESS
    )
    p.add_argument(
        "--mp-start",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help=argparse.SUPPRESS,
    )
    p.add_argument(
        "--regions",
        type=int,
        default=None,
        metavar="K",
        help="build a K-region federation directory at INDEX instead "
        "of one monolithic index file (per-region shards + border "
        "index + TTLFED01 manifest)",
    )
    p.add_argument(
        "--region-seed",
        type=int,
        default=0,
        help="seed for the min-cut partition heuristic (--regions)",
    )
    p.add_argument(
        "--from-names",
        action="store_true",
        help="derive regions from /r<i>/ or /c<i>/ station-name tags "
        "instead of the heuristic (multi-region/country datasets)",
    )
    _add_dataset_args(p)

    p = sub.add_parser(
        "partition",
        help="preview a region partition without building",
    )
    p.add_argument("name")
    p.add_argument(
        "--regions", type=int, default=2, metavar="K",
        help="number of regions for the min-cut heuristic",
    )
    p.add_argument(
        "--region-seed", type=int, default=0,
        help="seed for the partition heuristic",
    )
    p.add_argument(
        "--from-names",
        action="store_true",
        help="derive regions from station-name tags",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="list every border stop",
    )
    _add_dataset_args(p)

    p = sub.add_parser("query", help="answer one query with every method")
    p.add_argument("name")
    p.add_argument("kind", choices=["eap", "ldp", "sdp"])
    p.add_argument("source", type=int)
    p.add_argument("dest", type=int)
    p.add_argument("--start", help="HH:MM[:SS]")
    p.add_argument("--end", help="HH:MM[:SS]")
    p.add_argument("--index", help="load a saved TTL index")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-planner query metrics after the answers",
    )
    _add_dataset_args(p)

    p = sub.add_parser("bench", help="run a paper experiment")
    p.add_argument(
        "experiment", choices=list(_EXPERIMENTS) + ["all"]
    )
    p.add_argument("--datasets", help="comma-separated subset")
    p.add_argument("--queries", type=int)
    _add_scale(p)

    p = sub.add_parser("verify", help="verify a saved TTL index")
    p.add_argument("name")
    p.add_argument("index")
    p.add_argument("--samples", type=int, default=200)
    _add_dataset_args(p)

    p = sub.add_parser(
        "profile", help="all non-dominated journeys in a window"
    )
    p.add_argument("name")
    p.add_argument("source", type=int)
    p.add_argument("dest", type=int)
    p.add_argument("--start", required=True, help="HH:MM[:SS]")
    p.add_argument("--end", required=True, help="HH:MM[:SS]")
    _add_dataset_args(p)

    p = sub.add_parser("analyze", help="index/network analysis reports")
    p.add_argument("name")
    _add_dataset_args(p)

    p = sub.add_parser("serve", help="serve a planner over HTTP")
    p.add_argument("name")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="prefork worker processes sharing one listening socket "
        "(1 = classic single-process serving)",
    )
    p.add_argument(
        "--index",
        help="serve a saved index file instead of building in-process",
    )
    p.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the --index file (zero-copy; requires the "
        "TTLIDX03 format written by 'repro-ttl build'); with "
        "--workers every process shares one physical copy",
    )
    p.add_argument(
        "--live",
        action="store_true",
        help="serve a disruption-aware live overlay engine",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=2000.0,
        help="per-request wall-clock budget in ms (0 disables; "
        "expired queries answer 504)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrent requests before shedding with 429",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="per-worker hot-pair answer cache capacity in entries "
        "(0 disables; live mutations invalidate via taint analysis — "
        "see docs/serving.md)",
    )
    p.add_argument(
        "--no-warm",
        action="store_true",
        help="start serving immediately and build the index in the "
        "background (/healthz reports build progress; queries answer "
        "503 until ready)",
    )
    p.add_argument(
        "--build-jobs",
        type=int,
        default=1,
        help="build-farm worker processes for index construction",
    )
    p.add_argument(
        "--journal",
        metavar="FILE",
        help="durable live-event journal for --live --workers>1: the "
        "supervisor appends every mutation here and workers replay it "
        "(created if missing; recovered + compacted on restart; "
        "defaults to a temp file)",
    )
    p.add_argument(
        "--control-port",
        type=int,
        default=0,
        help="supervisor control-plane port for journalled live "
        "mutations (0 = pick a free port)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds SIGTERM-drain grants in-flight requests per "
        "worker before SIGKILL",
    )
    p.add_argument(
        "--federation",
        metavar="DIR",
        help="serve a federation directory (built with "
        "'build --regions'): one mmap worker per region shard behind "
        "a stitching router",
    )
    # Hidden: deterministic fault injection for chaos drills.
    p.add_argument("--chaos", metavar="PLAN.json", help=argparse.SUPPRESS)
    _add_dataset_args(p)

    p = sub.add_parser(
        "live", help="replay a disruption feed, report live-engine stats"
    )
    p.add_argument("name")
    p.add_argument("--feed", help="JSON feed file (default: synthetic)")
    p.add_argument("--rate", type=float, default=0.05,
                   help="synthetic disruption rate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--queries", type=int, default=300,
                   help="mixed workload size after replay")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print each replayed event")
    _add_scale(p)

    p = sub.add_parser(
        "report", help="run all experiments, emit a markdown report"
    )
    p.add_argument("-o", "--output", help="write to file (default stdout)")
    p.add_argument("--datasets", help="comma-separated subset")
    p.add_argument("--queries", type=int)
    _add_scale(p)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "info": _cmd_info,
        "generate": _cmd_generate,
        "build": _cmd_build,
        "partition": _cmd_partition,
        "query": _cmd_query,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
        "profile": _cmd_profile,
        "analyze": _cmd_analyze,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "live": _cmd_live,
    }
    from repro.errors import ReproError

    try:
        return handlers[args.command](args)
    except ReproError as exc:
        # Mirror the HTTP API's one error shape on stderr: message,
        # then the offending field and an actionable hint when known.
        print(f"error: {exc}", file=sys.stderr)
        field = getattr(exc, "field", None)
        if field is not None:
            print(f"  field: {field}", file=sys.stderr)
        hint = getattr(exc, "hint", None)
        if hint is not None:
            print(f"  hint: {hint}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
