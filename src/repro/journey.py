"""Query results.

Every planner in this repository (temporal Dijkstra, CSA, CHT, TTL,
C-TTL) answers EAP / LDP / SDP queries with a :class:`Journey`.  A
journey always knows its departure and arrival time; it carries either

* a **full path** — the exact connection sequence (Definition 1); or
* a **concise path** (Section 8) — one :class:`ConciseLeg` per boarded
  vehicle: "board trip ``b`` at station ``s`` at time ``t``", plus the
  final station and arrival time.

Both representations can be produced by TTL; the concise one is cheaper
to reconstruct and is benchmarked separately (Figure 3).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import ValidationError
from repro.graph.connection import (
    Connection,
    Path,
    path_transfers,
    validate_path,
)
from repro.timeutil import format_time


class ConciseLeg(NamedTuple):
    """One boarding instruction of a concise path (Section 8)."""

    station: int
    trip: int
    time: int


class Journey:
    """The answer to a path query.

    Attributes:
        source: starting station.
        destination: ending station.
        dep: departure time from the source.
        arr: arrival time at the destination.
        path: full connection sequence, when available.
        legs: concise boarding instructions, when available.
    """

    __slots__ = ("source", "destination", "dep", "arr", "path", "legs")

    def __init__(
        self,
        source: int,
        destination: int,
        dep: int,
        arr: int,
        path: Optional[Path] = None,
        legs: Optional[List[ConciseLeg]] = None,
    ) -> None:
        if arr < dep:
            raise ValidationError(
                f"journey arrives ({arr}) before departing ({dep})"
            )
        self.source = source
        self.destination = destination
        self.dep = dep
        self.arr = arr
        self.path = path
        self.legs = legs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_path(cls, path: Sequence[Connection]) -> "Journey":
        """Build a journey from a full connection sequence."""
        validate_path(path)
        return cls(
            source=path[0].u,
            destination=path[-1].v,
            dep=path[0].dep,
            arr=path[-1].arr,
            path=list(path),
        )

    @classmethod
    def from_legs(
        cls, legs: Sequence[ConciseLeg], destination: int, arr: int
    ) -> "Journey":
        """Build a journey from concise boarding instructions."""
        if not legs:
            raise ValidationError("concise journey needs at least one leg")
        return cls(
            source=legs[0].station,
            destination=destination,
            dep=legs[0].time,
            arr=arr,
            legs=list(legs),
        )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def duration(self) -> int:
        """Total travel time in seconds."""
        return self.arr - self.dep

    @property
    def transfers(self) -> Optional[int]:
        """Number of vehicle changes, when derivable."""
        if self.path is not None:
            return path_transfers(self.path)
        if self.legs is not None:
            return len(self.legs) - 1
        return None

    def to_concise(self) -> "Journey":
        """Convert a full-path journey to its concise representation."""
        if self.legs is not None:
            return self
        if self.path is None:
            raise ValidationError("journey has neither path nor legs")
        legs: List[ConciseLeg] = []
        for conn in self.path:
            if not legs or legs[-1].trip != conn.trip:
                legs.append(ConciseLeg(conn.u, conn.trip, conn.dep))
        return Journey(
            source=self.source,
            destination=self.destination,
            dep=self.dep,
            arr=self.arr,
            legs=legs,
        )

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------

    def same_times(self, other: "Journey") -> bool:
        """True when both journeys share (dep, arr) — how correctness is
        judged across planners (paths may legitimately differ)."""
        return self.dep == other.dep and self.arr == other.arr

    def describe(self, graph=None) -> str:
        """Human-readable multi-line description."""
        name = (
            graph.station_name
            if graph is not None
            else (lambda s: f"s{s}")
        )
        lines = [
            f"{name(self.source)} -> {name(self.destination)}  "
            f"dep {format_time(self.dep)}  arr {format_time(self.arr)}  "
            f"({self.duration}s)"
        ]
        if self.legs is not None:
            for leg in self.legs:
                lines.append(
                    f"  board trip {leg.trip} at {name(leg.station)} "
                    f"({format_time(leg.time)})"
                )
        elif self.path is not None:
            for conn in self.path:
                lines.append(
                    f"  {name(conn.u)} -> {name(conn.v)} "
                    f"[{format_time(conn.dep)} -> {format_time(conn.arr)}] "
                    f"trip {conn.trip}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (for API servers / result caches)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe representation of the journey."""
        data = {
            "source": self.source,
            "destination": self.destination,
            "dep": self.dep,
            "arr": self.arr,
        }
        if self.path is not None:
            data["path"] = [list(conn) for conn in self.path]
        if self.legs is not None:
            data["legs"] = [list(leg) for leg in self.legs]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Journey":
        """Inverse of :meth:`to_dict`."""
        path = None
        legs = None
        if "path" in data:
            path = [Connection(*conn) for conn in data["path"]]
        if "legs" in data:
            legs = [ConciseLeg(*leg) for leg in data["legs"]]
        return cls(
            source=data["source"],
            destination=data["destination"],
            dep=data["dep"],
            arr=data["arr"],
            path=path,
            legs=legs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Journey({self.source}->{self.destination}, "
            f"dep={self.dep}, arr={self.arr})"
        )
