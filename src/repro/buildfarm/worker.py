"""Worker processes: under-pruned label searches over assigned hubs.

Each worker is a long-lived child process holding

* a rebuilt :class:`~repro.graph.timetable.TimetableGraph` (shipped
  once, as flat connection columns — never pickled dicts), and
* a mirror of the *committed* label state, updated from per-chunk
  delta broadcasts.

For every assigned hub the worker runs the unmodified
:class:`repro.core.build._Builder` phases with the pruning tables
pointed at its committed mirror and emissions kept separate.  Pruning
against the committed rank-prefix only (never against same-chunk hubs
or its own candidates) is what makes the search *under-pruned*: it
yields a superset of the hub's canonical labels, every surplus label
being provably cover-dominated — the merge removes exactly those, so
the reduced index is identical to the serial one (see
``docs/build_pipeline.md`` for the argument).

Wire protocol (tuples over a duplex pipe; payloads are flat
``array('q')`` columns from :mod:`repro.core.store`):

* ``("init", worker_id, n, graph_blob, ranks, prune_cover)`` →
  ``("ready", worker_id, pid)``
* ``("state", in_blob, out_blob)`` — apply committed delta, no reply
* ``("hubs", chunk_index, [hub, ...])`` → one
  ``("hub", worker_id, chunk_index, hub, fwd_blob, bwd_blob)`` per
  hub (doubling as heartbeat) then
  ``("done", worker_id, chunk_index, stats_tuple)``
* ``("stop",)`` — exit
* any exception → ``("error", worker_id, traceback_text)``

Everything here must be importable under the ``spawn`` start method:
:func:`worker_main` is a module-level function and every message is
picklable without the parent's object graph.
"""

from __future__ import annotations

import os
import traceback
from array import array
from typing import Dict, List, Sequence, Tuple

from repro.core.build import _Builder
from repro.core.label import LabelGroup
from repro.core.store import (
    GroupTableBlob,
    decode_group_entries,
    encode_group_entries,
)
from repro.graph.connection import Connection
from repro.graph.timetable import TimetableGraph

#: (forward_pops, backward_pops, cover_pruned, dominance_pruned,
#: dijkstra_runs) — summed into the farm's BuildStats.
StatsTuple = Tuple[int, int, int, int, int]

#: Per-node hub->group tables, the shape the serial builder uses.
StateTables = List[Dict[int, LabelGroup]]

#: (us, vs, deps, arrs, trips) connection columns.
GraphBlob = Tuple[array, array, array, array, array]


def encode_graph(graph: TimetableGraph) -> GraphBlob:
    """Flatten a graph's connections into five typed columns.

    Routes/trips metadata and station names are deliberately dropped:
    the label sweep reads only the connection relation, and the full
    graph object (with its dict-shaped route tables) would be slow to
    pickle and is not needed in the children.
    """
    us = array("q")
    vs = array("q")
    deps = array("q")
    arrs = array("q")
    trips = array("q")
    for c in graph.connections:
        us.append(c.u)
        vs.append(c.v)
        deps.append(c.dep)
        arrs.append(c.arr)
        trips.append(c.trip)
    return (us, vs, deps, arrs, trips)


def decode_graph(n: int, blob: GraphBlob) -> TimetableGraph:
    """Rebuild a sweep-ready graph from flat columns.

    ``validate=False``: the parent's graph already passed validation,
    and re-validating in every worker would repeat O(m log m) work.
    """
    us, vs, deps, arrs, trips = blob
    connections = [
        Connection(us[i], vs[i], deps[i], arrs[i], trips[i])
        for i in range(len(us))
    ]
    return TimetableGraph(n, connections, validate=False)


class HubSearcher:
    """Runs under-pruned per-hub searches against a committed mirror.

    Used verbatim by the worker processes *and* by the farm's inline
    (``jobs=1``) mode, so both paths exercise the same search code.
    """

    def __init__(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        prune_cover: bool,
        in_state: "StateTables" = None,
        out_state: "StateTables" = None,
    ) -> None:
        self.graph = graph
        self.ranks = ranks
        self.prune_cover = prune_cover
        n = graph.n
        # Inline (jobs=1) builds hand in the farm's committed tables so
        # each merge commit immediately tightens the next hub's pruning
        # — the serial prefix, at serial speed.  Workers get fresh
        # mirrors fed by delta broadcasts instead.
        self.in_state: StateTables = (
            in_state if in_state is not None else [dict() for _ in range(n)]
        )
        self.out_state: StateTables = (
            out_state if out_state is not None else [dict() for _ in range(n)]
        )

    def apply_delta(
        self, in_blob: GroupTableBlob, out_blob: GroupTableBlob
    ) -> None:
        """Fold a committed-label broadcast into the mirror tables."""
        for node, group in decode_group_entries(in_blob, self.ranks):
            self.in_state[node][group.hub] = group
        for node, group in decode_group_entries(out_blob, self.ranks):
            self.out_state[node][group.hub] = group

    def search_hub(
        self, h: int
    ) -> Tuple[GroupTableBlob, GroupTableBlob, StatsTuple]:
        """Candidate labels of hub ``h`` against the committed prefix."""
        builder = _Builder(
            self.graph,
            self.ranks,
            self.prune_cover,
            prune_in=self.in_state,
            prune_out=self.out_state,
        )
        fwd = builder.forward_phase(h)
        bwd = builder.backward_phase(h)
        stats = builder.stats
        return (
            encode_group_entries(fwd),
            encode_group_entries(bwd),
            (
                stats.forward_pops,
                stats.backward_pops,
                stats.cover_pruned,
                stats.dominance_pruned,
                stats.dijkstra_runs,
            ),
        )


def worker_main(conn, worker_id: int) -> None:
    """Child process entry point: serve search requests until stopped."""
    searcher = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "init":
                _, worker_id, n, graph_blob, ranks, prune_cover = message
                graph = decode_graph(n, graph_blob)
                searcher = HubSearcher(graph, list(ranks), prune_cover)
                conn.send(("ready", worker_id, os.getpid()))
            elif kind == "state":
                _, in_blob, out_blob = message
                searcher.apply_delta(in_blob, out_blob)
            elif kind == "hubs":
                _, chunk_index, hubs = message
                stats_sum = [0, 0, 0, 0, 0]
                for h in hubs:
                    fwd_blob, bwd_blob, stats = searcher.search_hub(h)
                    for i, value in enumerate(stats):
                        stats_sum[i] += value
                    conn.send(
                        ("hub", worker_id, chunk_index, h, fwd_blob, bwd_blob)
                    )
                conn.send(("done", worker_id, chunk_index, tuple(stats_sum)))
            elif kind == "stop":
                return
            else:
                raise ValueError(f"unknown message kind {kind!r}")
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
