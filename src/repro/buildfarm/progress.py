"""Build observability: progress snapshots and worker heartbeats.

The farm drives a single :class:`ProgressTracker` through the whole
pipeline.  The tracker is written from the build thread (or the main
thread for foreground builds) and read from arbitrary other threads —
the service's ``/healthz/ready`` handler polls it while a background
build runs — so every mutation and the snapshot path take one lock.

Consumers get an immutable :class:`BuildProgress` snapshot; the
optional user callback receives the same snapshot after every hub,
chunk, and phase transition, which is what feeds the CLI's live
progress line.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Seconds without a heartbeat after which a worker is reported stale.
STALE_WORKER_SECONDS = 30.0


@dataclass(frozen=True)
class WorkerBeat:
    """Last observed activity of one worker process."""

    pid: int
    hubs_done: int
    seconds_since_beat: float

    @property
    def stale(self) -> bool:
        return self.seconds_since_beat > STALE_WORKER_SECONDS


@dataclass(frozen=True)
class BuildProgress:
    """Immutable snapshot of a running (or finished) index build."""

    phase: str
    jobs: int
    hubs_total: int
    hubs_done: int
    chunks_total: int
    chunks_done: int
    chunks_resumed: int
    labels_committed: int
    elapsed_seconds: float
    labels_per_second: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    workers: Dict[int, WorkerBeat] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for ``/healthz/ready`` and the CLI."""
        return {
            "phase": self.phase,
            "jobs": self.jobs,
            "hubs_done": self.hubs_done,
            "hubs_total": self.hubs_total,
            "chunks_done": self.chunks_done,
            "chunks_total": self.chunks_total,
            "chunks_resumed": self.chunks_resumed,
            "labels_committed": self.labels_committed,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "labels_per_second": round(self.labels_per_second, 1),
            "phase_seconds": {
                name: round(seconds, 3)
                for name, seconds in self.phase_seconds.items()
            },
            "workers": {
                str(worker_id): {
                    "pid": beat.pid,
                    "hubs_done": beat.hubs_done,
                    "seconds_since_beat": round(beat.seconds_since_beat, 1),
                    "stale": beat.stale,
                }
                for worker_id, beat in self.workers.items()
            },
        }


ProgressCallback = Callable[[BuildProgress], None]


class ProgressTracker:
    """Thread-safe accumulator behind :class:`BuildProgress` snapshots.

    ``clock`` is injectable so tests can drive deterministic elapsed
    times and staleness without sleeping.
    """

    def __init__(
        self,
        callback: Optional[ProgressCallback] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._callback = callback
        self._clock = clock
        self._started = clock()
        self._phase = "idle"
        self._phase_started = self._started
        self._phase_seconds: Dict[str, float] = {}
        self._jobs = 0
        self._hubs_total = 0
        self._hubs_done = 0
        self._chunks_total = 0
        self._chunks_done = 0
        self._chunks_resumed = 0
        self._labels_committed = 0
        # worker_id -> (pid, hubs_done, last_beat_monotonic)
        self._beats: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Mutations (build side)
    # ------------------------------------------------------------------

    def configure(
        self, jobs: int, hubs_total: int, chunks_total: int
    ) -> None:
        with self._lock:
            self._jobs = jobs
            self._hubs_total = hubs_total
            self._chunks_total = chunks_total
        self._emit()

    def start_phase(self, name: str) -> None:
        with self._lock:
            now = self._clock()
            elapsed = now - self._phase_started
            self._phase_seconds[self._phase] = (
                self._phase_seconds.get(self._phase, 0.0) + elapsed
            )
            self._phase = name
            self._phase_started = now
        self._emit()

    def worker_beat(self, worker_id: int, pid: int, hubs_done: int) -> None:
        with self._lock:
            self._beats[worker_id] = (pid, hubs_done, self._clock())

    def hub_done(self) -> None:
        with self._lock:
            self._hubs_done += 1
        self._emit()

    def chunk_done(self, labels_committed: int, resumed: bool = False) -> None:
        with self._lock:
            self._chunks_done += 1
            self._labels_committed += labels_committed
            if resumed:
                self._chunks_resumed += 1
        self._emit()

    def hubs_resumed(self, count: int) -> None:
        with self._lock:
            self._hubs_done += count
        self._emit()

    # ------------------------------------------------------------------
    # Snapshot (any thread)
    # ------------------------------------------------------------------

    def snapshot(self) -> BuildProgress:
        with self._lock:
            now = self._clock()
            elapsed = now - self._started
            phase_seconds = dict(self._phase_seconds)
            phase_seconds[self._phase] = (
                phase_seconds.get(self._phase, 0.0)
                + (now - self._phase_started)
            )
            phase_seconds.pop("idle", None)
            rate = self._labels_committed / elapsed if elapsed > 0 else 0.0
            workers = {
                worker_id: WorkerBeat(pid, hubs, max(0.0, now - beat_at))
                for worker_id, (pid, hubs, beat_at) in self._beats.items()
            }
            return BuildProgress(
                phase=self._phase,
                jobs=self._jobs,
                hubs_total=self._hubs_total,
                hubs_done=self._hubs_done,
                chunks_total=self._chunks_total,
                chunks_done=self._chunks_done,
                chunks_resumed=self._chunks_resumed,
                labels_committed=self._labels_committed,
                elapsed_seconds=elapsed,
                labels_per_second=rate,
                phase_seconds=phase_seconds,
                workers=workers,
            )

    def _emit(self) -> None:
        if self._callback is not None:
            self._callback(self.snapshot())
