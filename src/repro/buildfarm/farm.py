"""The build farm orchestrator.

:func:`build_index_parallel` is the parallel, checkpointable,
observable counterpart of :func:`repro.core.build.build_index`:

1. resolve the node order and cut the rank sweep into deterministic
   chunks (:mod:`repro.buildfarm.plan`);
2. optionally resume: load the longest contiguous prefix of checkpoint
   shards whose manifest matches this build's graph/order digests;
3. per chunk, fan the hub searches out over worker processes
   (:mod:`repro.buildfarm.worker`) — or run them inline for
   ``jobs=1`` — then reduce the candidates deterministically
   (:mod:`repro.buildfarm.merge`), persist the chunk as a shard, and
   broadcast the committed delta to the workers;
4. seal the committed tables into a :class:`~repro.core.index.TTLIndex`.

The output is identical to the serial builder's, label for label; the
equality gate in ``tests/test_buildfarm.py`` asserts it across every
registry dataset.  Interruptions are first-class: a build killed
mid-run (or aborted via the deterministic ``fail_after_chunks`` test
hook) leaves a valid checkpoint directory behind, and a ``--resume``
run completes the index without recomputing finished chunks.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Tuple

from repro.core.build import BuildStats, OrderSpec, resolve_order
from repro.core.order import graph_digest, order_digest
from repro.core.store import decode_group_entries, encode_group_entries
from repro.errors import BuildAborted, BuildFarmError
from repro.graph.timetable import TimetableGraph

from repro.buildfarm import checkpoint as ckpt
from repro.buildfarm.checkpoint import Entries
from repro.buildfarm.merge import apply_entries, merge_hub
from repro.buildfarm.plan import (
    assign_round_robin,
    default_chunk_size,
    make_plan,
)
from repro.buildfarm.progress import ProgressCallback, ProgressTracker
from repro.buildfarm.worker import (
    HubSearcher,
    StateTables,
    encode_graph,
    worker_main,
)

#: hub -> (forward entries, backward entries)
_Candidates = Dict[int, Tuple[Entries, Entries]]


class _WorkerPool:
    """Parent-side handle over the persistent worker processes."""

    def __init__(
        self,
        graph: TimetableGraph,
        ranks: List[int],
        prune_cover: bool,
        jobs: int,
        mp_start: Optional[str],
        tracker: ProgressTracker,
    ) -> None:
        self.ranks = ranks
        self.tracker = tracker
        ctx = multiprocessing.get_context(mp_start)
        graph_blob = encode_graph(graph)
        self.procs = []
        self.conns = []
        for worker_id in range(jobs):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_id),
                daemon=True,
                name=f"buildfarm-worker-{worker_id}",
            )
            proc.start()
            child_conn.close()
            try:
                parent_conn.send(
                    (
                        "init", worker_id, graph.n,
                        graph_blob, ranks, prune_cover,
                    )
                )
            except (BrokenPipeError, OSError) as exc:
                raise BuildFarmError(
                    f"worker {worker_id} died during startup (under the "
                    f"spawn start method the program must be importable "
                    f"as a module): {exc}"
                ) from exc
            self.procs.append(proc)
            self.conns.append(parent_conn)
        for worker_id, conn in enumerate(self.conns):
            reply = self._recv(conn)
            if reply[0] != "ready":
                raise BuildFarmError(
                    f"worker {worker_id} failed to initialize: {reply!r}"
                )
            self.tracker.worker_beat(worker_id, reply[2], 0)

    def _recv(self, conn):
        try:
            message = conn.recv()
        except EOFError as exc:
            raise BuildFarmError(
                "a build worker died unexpectedly (pipe closed)"
            ) from exc
        if message[0] == "error":
            raise BuildFarmError(
                f"worker {message[1]} crashed:\n{message[2]}"
            )
        return message

    def broadcast_state(
        self, in_entries: Entries, out_entries: Entries
    ) -> None:
        if not in_entries and not out_entries:
            return
        in_blob = encode_group_entries(in_entries)
        out_blob = encode_group_entries(out_entries)
        for conn in self.conns:
            conn.send(("state", in_blob, out_blob))

    def run_chunk(
        self, chunk_index: int, hubs: List[int], stats: BuildStats
    ) -> _Candidates:
        """Fan one chunk's hubs out and collect all candidate labels."""
        lanes = assign_round_robin(hubs, len(self.conns))
        active = {}
        hubs_done_per_worker = [0] * len(self.conns)
        for worker_id, lane in enumerate(lanes):
            if lane:
                self.conns[worker_id].send(("hubs", chunk_index, lane))
                active[worker_id] = self.conns[worker_id]
        candidates: _Candidates = {}
        while active:
            for conn in connection_wait(list(active.values())):
                message = self._recv(conn)
                kind = message[0]
                if kind == "hub":
                    _, worker_id, _, h, fwd_blob, bwd_blob = message
                    candidates[h] = (
                        decode_group_entries(fwd_blob, self.ranks),
                        decode_group_entries(bwd_blob, self.ranks),
                    )
                    hubs_done_per_worker[worker_id] += 1
                    self.tracker.worker_beat(
                        worker_id,
                        self.procs[worker_id].pid,
                        hubs_done_per_worker[worker_id],
                    )
                    self.tracker.hub_done()
                elif kind == "done":
                    _, worker_id, _, stats_tuple = message
                    stats.forward_pops += stats_tuple[0]
                    stats.backward_pops += stats_tuple[1]
                    stats.cover_pruned += stats_tuple[2]
                    stats.dominance_pruned += stats_tuple[3]
                    stats.dijkstra_runs += stats_tuple[4]
                    del active[worker_id]
                else:
                    raise BuildFarmError(
                        f"unexpected worker message {kind!r}"
                    )
        return candidates

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.conns:
            conn.close()


def build_index_parallel(
    graph: TimetableGraph,
    order: OrderSpec = "hub",
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    prune_cover: bool = True,
    progress: Optional[ProgressCallback] = None,
    tracker: Optional[ProgressTracker] = None,
    mp_start: Optional[str] = None,
    fail_after_chunks: Optional[int] = None,
):
    """Build a TTL index with the parallel, checkpointable pipeline.

    Args:
        graph: the timetable graph.
        order: node-order specification (see
            :func:`repro.core.build.resolve_order`).
        jobs: worker processes; ``1`` runs the searches inline in this
            process (serial speed, same chunking/checkpoint path).
        chunk_size: hubs per chunk; default scales with ``jobs``.
        checkpoint_dir: directory for shards + manifest; ``None``
            disables checkpointing.
        resume: reuse a matching checkpoint's completed chunks instead
            of recomputing them.  Requires ``checkpoint_dir``.
        prune_cover: disable only for the pruning ablation.
        progress: callback receiving a
            :class:`~repro.buildfarm.progress.BuildProgress` snapshot
            after every hub, chunk, and phase transition.
        tracker: externally owned tracker (the service passes its own
            so ``/healthz/ready`` can poll mid-build); overrides
            ``progress``.
        mp_start: multiprocessing start method (``"fork"``/``"spawn"``);
            ``None`` uses the platform default.
        fail_after_chunks: deterministic fault hook — raise
            :class:`~repro.errors.BuildAborted` after this many chunks
            complete *in this run*, leaving the checkpoint resumable.
            Exercised by the kill-and-resume tests and CI smoke job.

    Returns:
        A sealed :class:`~repro.core.index.TTLIndex` identical to
        :func:`repro.core.build.build_index`'s output.
    """
    from repro.core.index import TTLIndex

    if jobs < 1:
        raise BuildFarmError(f"jobs must be >= 1, got {jobs}")
    if resume and checkpoint_dir is None:
        raise BuildFarmError("resume requires a checkpoint directory")

    if tracker is None:
        tracker = ProgressTracker(callback=progress)
    start = time.perf_counter()

    tracker.start_phase("order")
    ranks = resolve_order(graph, order)
    order_seconds = time.perf_counter() - start

    tracker.start_phase("plan")
    n = graph.n
    if chunk_size is None:
        chunk_size = default_chunk_size(n, jobs)
    plan = make_plan(ranks, chunk_size)
    tracker.configure(jobs, n, len(plan.chunks))

    resumed_chunks = 0
    if checkpoint_dir is not None:
        manifest = ckpt.build_manifest(
            graph_digest(graph),
            order_digest(ranks),
            n,
            chunk_size,
            plan.rank_ranges(),
        )
        existing = ckpt.load_manifest(checkpoint_dir)
        if resume and existing is not None:
            ckpt.check_manifest(existing, manifest)
            resumed_chunks = ckpt.contiguous_shards(
                checkpoint_dir, len(plan.chunks)
            )
        else:
            # Fresh build: stale shards from an earlier, possibly
            # incompatible run must not survive next to the new
            # manifest where a later --resume would trust them.
            for chunk in plan.chunks:
                stale = ckpt.shard_path(checkpoint_dir, chunk.index)
                if stale.exists():
                    stale.unlink()
            ckpt.write_manifest(checkpoint_dir, manifest)

    in_state: StateTables = [dict() for _ in range(n)]
    out_state: StateTables = [dict() for _ in range(n)]
    stats = BuildStats()

    if resumed_chunks:
        tracker.start_phase("resume")
        for chunk in plan.chunks[:resumed_chunks]:
            in_entries, out_entries = ckpt.read_shard(
                checkpoint_dir, chunk.index, ranks, n
            )
            labels = apply_entries(
                in_entries, out_entries, in_state, out_state
            )
            tracker.hubs_resumed(len(chunk))
            tracker.chunk_done(labels, resumed=True)

    tracker.start_phase("build")
    pool: Optional[_WorkerPool] = None
    inline: Optional[HubSearcher] = None
    if jobs > 1:
        pool = _WorkerPool(graph, ranks, prune_cover, jobs, mp_start, tracker)
        if resumed_chunks:
            pool.broadcast_state(
                [
                    (node, group)
                    for node in range(n)
                    for group in in_state[node].values()
                ],
                [
                    (node, group)
                    for node in range(n)
                    for group in out_state[node].values()
                ],
            )
    else:
        inline = HubSearcher(
            graph, ranks, prune_cover, in_state=in_state, out_state=out_state
        )

    merge_dropped = 0
    built_this_run = 0
    try:
        for chunk in plan.chunks[resumed_chunks:]:
            if pool is not None:
                candidates = pool.run_chunk(
                    chunk.index, list(chunk.hubs), stats
                )
            else:
                candidates = {}

            chunk_in: Entries = []
            chunk_out: Entries = []
            labels_committed = 0
            for h in chunk.hubs:  # ascending rank: the serial order
                if pool is not None:
                    fwd_entries, bwd_entries = candidates.pop(h)
                else:
                    fwd_blob, bwd_blob, hub_stats = inline.search_hub(h)
                    fwd_entries = decode_group_entries(fwd_blob, ranks)
                    bwd_entries = decode_group_entries(bwd_blob, ranks)
                    stats.forward_pops += hub_stats[0]
                    stats.backward_pops += hub_stats[1]
                    stats.cover_pruned += hub_stats[2]
                    stats.dominance_pruned += hub_stats[3]
                    stats.dijkstra_runs += hub_stats[4]
                in_commits, out_commits, dropped = merge_hub(
                    h, fwd_entries, bwd_entries,
                    in_state, out_state, prune_cover,
                )
                merge_dropped += dropped
                chunk_in.extend(in_commits)
                chunk_out.extend(out_commits)
                labels_committed += sum(len(g) for _, g in in_commits)
                labels_committed += sum(len(g) for _, g in out_commits)
                if pool is None:
                    tracker.hub_done()

            if checkpoint_dir is not None:
                ckpt.write_shard(
                    checkpoint_dir, chunk.index, chunk_in, chunk_out
                )
            if pool is not None:
                pool.broadcast_state(chunk_in, chunk_out)
            tracker.chunk_done(labels_committed)
            built_this_run += 1
            if (
                fail_after_chunks is not None
                and built_this_run >= fail_after_chunks
                and resumed_chunks + built_this_run < len(plan.chunks)
            ):
                tracker.start_phase("aborted")
                raise BuildAborted(resumed_chunks + built_this_run)
    finally:
        if pool is not None:
            pool.shutdown()

    tracker.start_phase("seal")
    # Merge-dropped candidates are labels the serial build never emits;
    # count them with cover_pruned so the ablation accounting stays
    # comparable (totals still differ from serial: workers under-prune).
    stats.cover_pruned += merge_dropped
    stats.order_seconds = order_seconds
    stats.extra["jobs"] = jobs
    stats.extra["chunks"] = len(plan.chunks)
    stats.extra["chunks_resumed"] = resumed_chunks
    stats.extra["merge_dropped_labels"] = merge_dropped
    index = TTLIndex(graph, ranks, in_state, out_state, stats)
    stats.num_labels = index.num_labels
    stats.seconds = time.perf_counter() - start
    tracker.start_phase("done")
    return index
