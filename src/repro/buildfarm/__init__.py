"""repro.buildfarm — parallel, checkpointable index construction.

Turns the serial IndexBuild sweep (paper §5, Algorithm 3) into a
resumable multi-process pipeline while keeping the output
label-for-label identical to :func:`repro.core.build.build_index`:

* :mod:`~repro.buildfarm.plan` — deterministic chunking of the
  rank-ordered hub sweep;
* :mod:`~repro.buildfarm.worker` — under-pruned per-hub searches in
  worker processes (flat-array IPC, spawn-safe);
* :mod:`~repro.buildfarm.merge` — the rank-ordered reduction that
  re-applies exact hub-cover pruning;
* :mod:`~repro.buildfarm.checkpoint` — TTLIDX02-compatible shards and
  the build manifest;
* :mod:`~repro.buildfarm.progress` — thread-safe build observability;
* :mod:`~repro.buildfarm.farm` — the orchestrator.
"""

from repro.buildfarm.farm import build_index_parallel
from repro.buildfarm.plan import BuildPlan, Chunk, default_chunk_size, make_plan
from repro.buildfarm.progress import (
    BuildProgress,
    ProgressTracker,
    WorkerBeat,
)

__all__ = [
    "BuildPlan",
    "BuildProgress",
    "Chunk",
    "ProgressTracker",
    "WorkerBeat",
    "build_index_parallel",
    "default_chunk_size",
    "make_plan",
]
