"""Deterministic reduction of worker candidates into committed labels.

Workers search hubs of one chunk concurrently, pruning only against
the labels committed by earlier chunks — so their candidate groups are
supersets of the canonical label sets: every surplus candidate is
cover-dominated through some higher-ranked hub of the *same* chunk.
The merge replays the serial algorithm's pruning decision exactly:
hubs are processed in strict rank order, each candidate label is
re-checked with :func:`repro.core.build._covered` against the state
committed so far, and survivors are committed before the next hub is
filtered.

Why this reproduces the serial index label for label:

* Coverage depends only on ``(dep, arr)`` and the two hub maps — not
  on which path produced the candidate — and the maps here grow
  through exactly the states the serial builder's maps pass through.
* Within one hub, the forward and backward filters are independent:
  the cover check for hub ``h`` pairs only hubs present in *both*
  maps, and ``h`` never appears in its own label maps, so ``h``'s
  fresh emissions cannot influence its own filtering (matching the
  serial builder, where they are equally inert).
* Candidate groups arrive in ascending-departure order, the same order
  the serial builder stores, so the filtered subsequence is the serial
  group verbatim — metadata included, because surviving labels' paths
  avoid every cover-pruned node (see ``docs/build_pipeline.md``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.build import _covered
from repro.core.label import LabelGroup

from repro.buildfarm.checkpoint import Entries

#: Per-node hub->group tables, same shape the serial builder uses.
StateTables = List[Dict[int, LabelGroup]]


def _filter_group(
    candidate: LabelGroup,
    src_out: Dict[int, LabelGroup],
    dst_in: Dict[int, LabelGroup],
    prune_cover: bool,
) -> Tuple[LabelGroup, int]:
    """Drop candidate labels the serial builder would cover-prune."""
    if not prune_cover:
        return candidate, 0
    kept = LabelGroup(candidate.hub, candidate.rank)
    dropped = 0
    trips = candidate.trips
    pivots = candidate.pivots
    for i in range(len(candidate)):
        dep = candidate.deps[i]
        arr = candidate.arrs[i]
        if _covered(src_out, dst_in, dep, arr):
            dropped += 1
            continue
        kept.append(dep, arr, trips[i], pivots[i])
    return kept, dropped


def merge_hub(
    h: int,
    fwd_entries: Entries,
    bwd_entries: Entries,
    in_state: StateTables,
    out_state: StateTables,
    prune_cover: bool,
) -> Tuple[Entries, Entries, int]:
    """Filter and commit one hub's candidates.

    Both directions are filtered against the state *before* this hub's
    commits (their serial counterparts cannot see each other either),
    then committed together.  Returns the committed ``(node, group)``
    entries per direction plus the number of labels dropped.
    """
    dropped_total = 0
    in_commits: Entries = []
    out_commits: Entries = []

    # Forward candidates: canonical paths h -> v, destined for
    # L_in(v); serial cover check is (out_groups[h], in_groups[v]).
    out_map_h = out_state[h]
    for v, candidate in fwd_entries:
        kept, dropped = _filter_group(
            candidate, out_map_h, in_state[v], prune_cover
        )
        dropped_total += dropped
        if len(kept):
            in_commits.append((v, kept))

    # Backward candidates: canonical paths v -> h, destined for
    # L_out(v); serial cover check is (out_groups[v], in_groups[h]).
    in_map_h = in_state[h]
    for v, candidate in bwd_entries:
        kept, dropped = _filter_group(
            candidate, out_state[v], in_map_h, prune_cover
        )
        dropped_total += dropped
        if len(kept):
            out_commits.append((v, kept))

    for v, group in in_commits:
        in_state[v][h] = group
    for v, group in out_commits:
        out_state[v][h] = group
    return in_commits, out_commits, dropped_total


def apply_entries(
    in_entries: Entries, out_entries: Entries,
    in_state: StateTables, out_state: StateTables,
) -> int:
    """Replay committed entries (e.g. loaded from a shard) into state.

    Returns the number of labels applied.
    """
    labels = 0
    for node, group in in_entries:
        in_state[node][group.hub] = group
        labels += len(group)
    for node, group in out_entries:
        out_state[node][group.hub] = group
        labels += len(group)
    return labels
