"""Checkpoint shards and the build manifest.

Layout of a checkpoint directory::

    manifest.json     build identity: graph/order digests, chunk plan
    shard-0000.bin    labels committed by chunk 0
    shard-0001.bin    ...

A shard holds exactly the labels a chunk's merge committed, in commit
order, encoded with the same group records as ``TTLIDX02`` index files
(``<qq`` hub/size header then ``<qqqq`` per label), so the persistence
and validation code is shared with :mod:`repro.core.serialize`.  Each
entry is prefixed with the node the group belongs to and whether it
extends the in- or out-table.

Every file is written with :func:`repro.core.serialize.atomic_write`:
a build killed mid-chunk leaves either a complete shard or none, never
a torn one.  Resume loads the longest *contiguous* prefix of shards —
a gap means later shards were built against state we cannot
reconstruct, so they are ignored and rebuilt.

The manifest pins what the shards mean: digests of the graph's
connection data and of the rank permutation, plus the chunk ranges.
Resuming against a different graph, order, or chunk size raises
:class:`~repro.errors.BuildFarmError` instead of silently producing a
frankenindex.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.label import LabelGroup
from repro.core.serialize import (
    atomic_write,
    read_exact,
    read_group_record,
    write_group_record,
)
from repro.errors import BuildFarmError, SerializationError

PathLike = Union[str, Path]

SHARD_MAGIC = b"TTLSHD01"
MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "TTLFARM01"

#: ``(node, group)`` pairs, in commit order.
Entries = List[Tuple[int, LabelGroup]]


def shard_path(directory: PathLike, chunk_index: int) -> Path:
    return Path(directory) / f"shard-{chunk_index:04d}.bin"


def manifest_path(directory: PathLike) -> Path:
    return Path(directory) / MANIFEST_NAME


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


def build_manifest(
    graph_digest: str,
    order_digest: str,
    n: int,
    chunk_size: int,
    rank_ranges: Sequence[Sequence[int]],
) -> Dict[str, object]:
    return {
        "format": MANIFEST_FORMAT,
        "graph_digest": graph_digest,
        "order_digest": order_digest,
        "n": n,
        "chunk_size": chunk_size,
        "chunks": [list(r) for r in rank_ranges],
    }


def write_manifest(directory: PathLike, manifest: Dict[str, object]) -> None:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    with atomic_write(manifest_path(directory)) as fh:
        fh.write(payload)


def load_manifest(directory: PathLike) -> Optional[Dict[str, object]]:
    """The manifest in ``directory``, or ``None`` if none exists."""
    path = manifest_path(directory)
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as exc:
        raise BuildFarmError(f"unreadable manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise BuildFarmError(f"malformed manifest {path}: not an object")
    return manifest


def check_manifest(
    manifest: Dict[str, object], expected: Dict[str, object]
) -> None:
    """Reject resuming under a different build identity."""
    if manifest.get("format") != MANIFEST_FORMAT:
        raise BuildFarmError(
            f"unsupported checkpoint format {manifest.get('format')!r}"
        )
    for key in ("graph_digest", "order_digest", "n", "chunk_size", "chunks"):
        if manifest.get(key) != expected.get(key):
            raise BuildFarmError(
                f"checkpoint does not match this build: {key} differs "
                f"(checkpoint {manifest.get(key)!r}, build "
                f"{expected.get(key)!r}); use a fresh --checkpoint-dir "
                f"or drop --resume"
            )


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------


def write_shard(
    directory: PathLike,
    chunk_index: int,
    in_entries: Entries,
    out_entries: Entries,
) -> None:
    """Persist one chunk's committed labels atomically."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with atomic_write(shard_path(directory, chunk_index)) as fh:
        fh.write(SHARD_MAGIC)
        fh.write(struct.pack("<q", chunk_index))
        for entries in (in_entries, out_entries):
            fh.write(struct.pack("<q", len(entries)))
            for node, group in entries:
                fh.write(struct.pack("<q", node))
                write_group_record(fh, group)


def read_shard(
    directory: PathLike,
    chunk_index: int,
    ranks: List[int],
    n: int,
) -> Tuple[Entries, Entries]:
    """Load one shard, validating ids against the build's graph/order."""
    path = shard_path(directory, chunk_index)
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(SHARD_MAGIC))
            if magic != SHARD_MAGIC:
                raise BuildFarmError(f"not a checkpoint shard: {path}")
            (stored_index,) = struct.unpack("<q", read_exact(fh, 8))
            if stored_index != chunk_index:
                raise BuildFarmError(
                    f"shard {path} claims chunk {stored_index}, "
                    f"expected {chunk_index}"
                )
            tables: List[Entries] = []
            for _ in range(2):
                (count,) = struct.unpack("<q", read_exact(fh, 8))
                if count < 0:
                    raise BuildFarmError(
                        f"corrupt shard {path}: negative entry count"
                    )
                entries: Entries = []
                for _ in range(count):
                    (node,) = struct.unpack("<q", read_exact(fh, 8))
                    if not 0 <= node < n:
                        raise BuildFarmError(
                            f"corrupt shard {path}: node {node} "
                            f"outside 0..{n - 1}"
                        )
                    entries.append((node, read_group_record(fh, ranks, n)))
                tables.append(entries)
    except SerializationError as exc:
        raise BuildFarmError(f"corrupt shard {path}: {exc}") from exc
    except OSError as exc:
        raise BuildFarmError(f"unreadable shard {path}: {exc}") from exc
    return tables[0], tables[1]


def contiguous_shards(directory: PathLike, num_chunks: int) -> int:
    """Length of the longest resumable prefix ``shard-0000..k-1``."""
    count = 0
    for chunk_index in range(num_chunks):
        if not shard_path(directory, chunk_index).exists():
            break
        count += 1
    return count
