"""Chunk planning for the parallel hub sweep.

The serial IndexBuild sweeps hubs from rank 0 upward.  The farm cuts
that sweep into consecutive *chunks* of ranks: within a chunk, hubs
are searched concurrently against the labels committed by all earlier
chunks (a complete canonical rank-prefix), then merged back in exact
rank order.  The plan is a pure function of ``(ranks, chunk_size)`` —
the same graph and order always produce the same chunks, which is what
makes checkpoints resumable and the parallel output reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import BuildFarmError

#: Lower bound on the auto-picked chunk size: chunks much smaller than
#: this spend more time on merge barriers than on searches.
MIN_AUTO_CHUNK = 8


@dataclass(frozen=True)
class Chunk:
    """One contiguous rank range ``[rank_lo, rank_hi)`` of the sweep."""

    index: int
    rank_lo: int
    rank_hi: int
    hubs: Sequence[int]  # node ids, ascending rank

    def __len__(self) -> int:
        return self.rank_hi - self.rank_lo


@dataclass(frozen=True)
class BuildPlan:
    """The full deterministic partition of a build's hub sweep."""

    chunk_size: int
    chunks: Sequence[Chunk]

    @property
    def num_hubs(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def rank_ranges(self) -> List[List[int]]:
        """``[[rank_lo, rank_hi], ...]`` — the manifest encoding."""
        return [[c.rank_lo, c.rank_hi] for c in self.chunks]


def default_chunk_size(n: int, jobs: int) -> int:
    """Pick a chunk size balancing parallel width against prune lag.

    Hubs inside a chunk cannot cover-prune against each other, so big
    chunks do extra search work that the merge then discards; tiny
    chunks serialize on merge barriers.  Aim for roughly ``4 * jobs``
    hubs per chunk, floored at :data:`MIN_AUTO_CHUNK`, and never more
    than the whole sweep.
    """
    if n <= 0:
        return 1
    return max(1, min(n, max(MIN_AUTO_CHUNK, 4 * jobs)))


def make_plan(ranks: Sequence[int], chunk_size: int) -> BuildPlan:
    """Partition hubs (sorted by rank) into consecutive chunks."""
    if chunk_size < 1:
        raise BuildFarmError(f"chunk size must be >= 1, got {chunk_size}")
    n = len(ranks)
    by_rank = sorted(range(n), key=lambda v: ranks[v])
    chunks: List[Chunk] = []
    for lo in range(0, n, chunk_size):
        hi = min(lo + chunk_size, n)
        chunks.append(
            Chunk(
                index=len(chunks),
                rank_lo=lo,
                rank_hi=hi,
                hubs=tuple(by_rank[lo:hi]),
            )
        )
    return BuildPlan(chunk_size=chunk_size, chunks=tuple(chunks))


def assign_round_robin(
    hubs: Sequence[int], jobs: int
) -> List[List[int]]:
    """Deal a chunk's hubs to ``jobs`` workers, round-robin by rank.

    Round-robin keeps per-worker load even when search cost correlates
    with rank (it does: lower-ranked hubs see smaller residual graphs).
    Assignment affects only which process computes a hub's candidates,
    never the merged output.
    """
    lanes: List[List[int]] = [[] for _ in range(jobs)]
    for i, hub in enumerate(hubs):
        lanes[i % jobs].append(hub)
    return lanes
